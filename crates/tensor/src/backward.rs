//! The reverse sweep: gradient rules for every op on the tape.
//!
//! Node ids are topologically ordered, so a single reverse pass over ids
//! visits every consumer before its producers. Each rule is exercised by a
//! finite-difference check in `tests/gradcheck.rs`.

use crate::graph::{stable_sigmoid, Graph, Op, Saved, Var};
use crate::linalg;
use crate::pool;
use crate::simd;
use crate::tensor::Tensor;

impl Graph {
    /// Run backpropagation from a scalar `loss` node, accumulating gradients
    /// into every upstream node with `requires_grad`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a scalar, got {:?}",
            self.value(loss).shape()
        );
        assert!(
            self.nodes[loss.0].requires_grad,
            "backward: loss does not depend on any gradient-requiring leaf"
        );
        let _span = basm_obs::span!("tensor.backward", nodes = self.nodes.len());
        self.accum_grad(loss.0, Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(gout) = self.nodes[i].grad.take() else { continue };
            if !self.nodes[i].requires_grad {
                self.nodes[i].grad = Some(gout);
                continue;
            }
            let op = self.nodes[i].op.clone();
            let contributions = self.local_grads(i, &op, &gout);
            for (j, g) in contributions {
                self.accum_grad(j, g);
            }
            self.nodes[i].grad = Some(gout);
        }
    }

    fn accum_grad(&mut self, id: usize, g: Tensor) {
        debug_assert_eq!(self.nodes[id].value.shape(), g.shape(), "grad shape mismatch");
        match &mut self.nodes[id].grad {
            Some(existing) => {
                existing.add_assign(&g);
                // The contribution was folded in; its buffer goes back to
                // the pool instead of the allocator.
                g.recycle();
            }
            slot @ None => *slot = Some(g),
        }
    }

    fn val(&self, id: usize) -> &Tensor {
        &self.nodes[id].value
    }

    fn needs(&self, id: usize) -> bool {
        self.nodes[id].requires_grad
    }

    /// Gradient contributions of node `i` (output grad `gout`, forward value
    /// `self.val(i)`) to each of its inputs.
    fn local_grads(&self, i: usize, op: &Op, gout: &Tensor) -> Vec<(usize, Tensor)> {
        let y = self.val(i);
        let mut out: Vec<(usize, Tensor)> = Vec::with_capacity(2);
        match *op {
            Op::Leaf => {}
            Op::Matmul { a, b } => {
                if self.needs(a) {
                    out.push((a, linalg::matmul_a_bt(gout, self.val(b))));
                }
                if self.needs(b) {
                    out.push((b, linalg::matmul_at_b(self.val(a), gout)));
                }
            }
            Op::Add { a, b } => {
                if self.needs(a) {
                    out.push((a, gout.clone()));
                }
                if self.needs(b) {
                    out.push((b, gout.clone()));
                }
            }
            Op::Sub { a, b } => {
                if self.needs(a) {
                    out.push((a, gout.clone()));
                }
                if self.needs(b) {
                    out.push((b, gout.par_map(|g| -g)));
                }
            }
            Op::Mul { a, b } => {
                if self.needs(a) {
                    out.push((a, gout.par_binary(self.val(b), simd::BinOp::Mul)));
                }
                if self.needs(b) {
                    out.push((b, gout.par_binary(self.val(a), simd::BinOp::Mul)));
                }
            }
            Op::Div { a, b } => {
                let bv = self.val(b);
                if self.needs(a) {
                    out.push((a, gout.par_binary(bv, simd::BinOp::Div)));
                }
                if self.needs(b) {
                    // d(a/b)/db = -a/b^2 = -y/b
                    let gy = gout.par_binary(y, simd::BinOp::Mul);
                    out.push((b, gy.par_zip_map(bv, |gy, d| -gy / d)));
                }
            }
            Op::AddRow { a, b } => {
                if self.needs(a) {
                    out.push((a, gout.clone()));
                }
                if self.needs(b) {
                    out.push((b, col_sums(gout)));
                }
            }
            Op::MulRow { a, b } => {
                let (m, n) = gout.shape();
                if self.needs(a) {
                    let bv = self.val(b);
                    let mut g = Tensor::scratch_pooled(m, n);
                    let threads = pool::threads_for(m, m * n);
                    pool::par_row_blocks(g.data_mut(), n, threads, |i0, block| {
                        let brow = bv.row(0);
                        for (ri, orow) in block.chunks_mut(n).enumerate() {
                            simd::binary(simd::BinOp::Mul, orow, gout.row(i0 + ri), brow);
                        }
                    });
                    out.push((a, g));
                }
                if self.needs(b) {
                    // Cross-row reduction into [1,n]: stays serial so the
                    // accumulation order is fixed.
                    let av = self.val(a);
                    let mut g = Tensor::zeros_pooled(1, n);
                    for r in 0..m {
                        let grow = gout.row(r);
                        let arow = av.row(r);
                        let orow = g.row_mut(0);
                        for j in 0..n {
                            orow[j] += grow[j] * arow[j];
                        }
                    }
                    out.push((b, g));
                }
            }
            Op::AddCol { a, b } => {
                if self.needs(a) {
                    out.push((a, gout.clone()));
                }
                if self.needs(b) {
                    let g = Tensor::from_fn(gout.rows(), 1, |r, _| gout.row(r).iter().sum());
                    out.push((b, g));
                }
            }
            Op::MulCol { a, b } => {
                let (m, n) = gout.shape();
                if self.needs(a) {
                    let bv = self.val(b);
                    let mut g = Tensor::scratch_pooled(m, n);
                    let threads = pool::threads_for(m, m * n);
                    pool::par_row_blocks(g.data_mut(), n, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(n).enumerate() {
                            simd::scale(orow, gout.row(i0 + ri), bv.get(i0 + ri, 0));
                        }
                    });
                    out.push((a, g));
                }
                if self.needs(b) {
                    let av = self.val(a);
                    let mut g = Tensor::scratch_pooled(m, 1);
                    let threads = pool::threads_for(m, m * n);
                    pool::par_row_blocks(g.data_mut(), 1, threads, |i0, block| {
                        for (ri, o) in block.iter_mut().enumerate() {
                            *o = linalg::dot(gout.row(i0 + ri), av.row(i0 + ri));
                        }
                    });
                    out.push((b, g));
                }
            }
            Op::Scale { a, c } => {
                if self.needs(a) {
                    out.push((a, gout.par_scale(c)));
                }
            }
            Op::AddScalar { a, .. } => {
                if self.needs(a) {
                    out.push((a, gout.clone()));
                }
            }
            Op::Sigmoid { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(y, |g, yv| g * yv * (1.0 - yv))));
                }
            }
            Op::Tanh { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(y, |g, yv| g * (1.0 - yv * yv))));
                }
            }
            Op::Relu { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(y, |g, yv| if yv > 0.0 { g } else { 0.0 })));
                }
            }
            Op::LeakyRelu { a, slope } => {
                if self.needs(a) {
                    out.push((
                        a,
                        gout.par_zip_map(y, |g, yv| if yv > 0.0 { g } else { g * slope }),
                    ));
                }
            }
            Op::Exp { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(y, |g, yv| g * yv)));
                }
            }
            Op::Ln { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(self.val(a), |g, xv| g / xv)));
                }
            }
            Op::Sqrt { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(y, |g, yv| g / (2.0 * yv))));
                }
            }
            Op::Square { a } => {
                if self.needs(a) {
                    out.push((a, gout.par_zip_map(self.val(a), |g, xv| 2.0 * g * xv)));
                }
            }
            Op::SoftmaxRows { a } | Op::MaskedSoftmaxRows { a, .. } => {
                // dx_j = y_j * (g_j - Σ_k g_k y_k); masked positions have y=0.
                if self.needs(a) {
                    let (m, n) = y.shape();
                    let mut g = Tensor::scratch_pooled(m, n);
                    let threads = pool::threads_for(m, m * n);
                    pool::par_row_blocks(g.data_mut(), n, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(n).enumerate() {
                            let yrow = y.row(i0 + ri);
                            let grow = gout.row(i0 + ri);
                            let inner = linalg::dot(grow, yrow);
                            for j in 0..n {
                                orow[j] = yrow[j] * (grow[j] - inner);
                            }
                        }
                    });
                    out.push((a, g));
                }
            }
            Op::ConcatCols { ref parts } => {
                let mut offset = 0;
                for &p in parts {
                    let w = self.val(p).cols();
                    if self.needs(p) {
                        let m = gout.rows();
                        let mut g = Tensor::scratch_pooled(m, w);
                        for r in 0..m {
                            g.row_mut(r).copy_from_slice(&gout.row(r)[offset..offset + w]);
                        }
                        out.push((p, g));
                    }
                    offset += w;
                }
            }
            Op::SliceCols { a, start, len } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    // Only the slice is written; the rest must be exact zero.
                    let mut g = Tensor::zeros_pooled(m, n);
                    for r in 0..m {
                        g.row_mut(r)[start..start + len].copy_from_slice(gout.row(r));
                    }
                    out.push((a, g));
                }
            }
            Op::SumAll { a } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    out.push((a, Tensor::full(m, n, gout.item())));
                }
            }
            Op::MeanAll { a } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    let scale = gout.item() / (m * n) as f32;
                    out.push((a, Tensor::full(m, n, scale)));
                }
            }
            Op::SumRows { a } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    out.push((a, Tensor::from_fn(m, n, |r, _| gout.get(r, 0))));
                }
            }
            Op::MeanRows { a } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    let inv = 1.0 / n as f32;
                    out.push((a, Tensor::from_fn(m, n, |r, _| gout.get(r, 0) * inv)));
                }
            }
            Op::SumCols { a } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    out.push((a, Tensor::from_fn(m, n, |_, c| gout.get(0, c))));
                }
            }
            Op::RowDot { a, b } => {
                if self.needs(a) {
                    let bv = self.val(b);
                    let g = Tensor::from_fn(bv.rows(), bv.cols(), |r, c| {
                        gout.get(r, 0) * bv.get(r, c)
                    });
                    out.push((a, g));
                }
                if self.needs(b) {
                    let av = self.val(a);
                    let g = Tensor::from_fn(av.rows(), av.cols(), |r, c| {
                        gout.get(r, 0) * av.get(r, c)
                    });
                    out.push((b, g));
                }
            }
            Op::Transpose { a } => {
                if self.needs(a) {
                    out.push((a, gout.transposed()));
                }
            }
            Op::Reshape { a } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    out.push((a, gout.reshaped(m, n)));
                }
            }
            Op::RepeatRows { a, times } => {
                if self.needs(a) {
                    let (m, n) = self.val(a).shape();
                    // Accumulates over the repeats: needs exact zeros.
                    let mut g = Tensor::zeros_pooled(m, n);
                    let threads = pool::threads_for(m, m * times * n);
                    pool::par_row_blocks(g.data_mut(), n, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(n).enumerate() {
                            let r = i0 + ri;
                            for k in 0..times {
                                simd::acc(orow, gout.row(r * times + k));
                            }
                        }
                    });
                    out.push((a, g));
                }
            }
            Op::SeqWeightedSum { seq, w, t, d } => {
                let m = gout.rows();
                if self.needs(seq) {
                    let wv = self.val(w);
                    let mut g = Tensor::zeros_pooled(m, t * d);
                    let threads = pool::threads_for(m, m * t * d);
                    pool::par_row_blocks(g.data_mut(), t * d, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(t * d).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let wrow = wv.row(i0 + ri);
                            for (ti, &wt) in wrow.iter().enumerate() {
                                if wt == 0.0 {
                                    continue;
                                }
                                let oblk = &mut orow[ti * d..(ti + 1) * d];
                                simd::axpy(oblk, grow, wt);
                            }
                        }
                    });
                    out.push((seq, g));
                }
                if self.needs(w) {
                    let sv = self.val(seq);
                    let mut g = Tensor::scratch_pooled(m, t);
                    let threads = pool::threads_for(m, m * t * d);
                    pool::par_row_blocks(g.data_mut(), t, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(t).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let srow = sv.row(i0 + ri);
                            for (ti, o) in orow.iter_mut().enumerate() {
                                *o = linalg::dot(&srow[ti * d..(ti + 1) * d], grow);
                            }
                        }
                    });
                    out.push((w, g));
                }
            }
            Op::MetaLinear { w, x, out_dim, in_dim } => {
                let m = gout.rows();
                if self.needs(w) {
                    let xv = self.val(x);
                    let mut g = Tensor::zeros_pooled(m, out_dim * in_dim);
                    let threads = pool::threads_for(m, m * out_dim * in_dim);
                    pool::par_row_blocks(g.data_mut(), out_dim * in_dim, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(out_dim * in_dim).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let xrow = xv.row(i0 + ri);
                            for (o, &gv) in grow.iter().enumerate() {
                                if gv == 0.0 {
                                    continue;
                                }
                                let oblk = &mut orow[o * in_dim..(o + 1) * in_dim];
                                simd::axpy(oblk, xrow, gv);
                            }
                        }
                    });
                    out.push((w, g));
                }
                if self.needs(x) {
                    let wv = self.val(w);
                    let mut g = Tensor::zeros_pooled(m, in_dim);
                    let threads = pool::threads_for(m, m * out_dim * in_dim);
                    pool::par_row_blocks(g.data_mut(), in_dim, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(in_dim).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let wrow = wv.row(i0 + ri);
                            for (o, &gv) in grow.iter().enumerate() {
                                if gv == 0.0 {
                                    continue;
                                }
                                let wblock = &wrow[o * in_dim..(o + 1) * in_dim];
                                simd::axpy(orow, wblock, gv);
                            }
                        }
                    });
                    out.push((x, g));
                }
            }
            Op::MetaLinearInMajor { w, x, out_dim, in_dim } => {
                let m = gout.rows();
                if self.needs(w) {
                    let xv = self.val(x);
                    let mut g = Tensor::zeros_pooled(m, out_dim * in_dim);
                    let threads = pool::threads_for(m, m * out_dim * in_dim);
                    pool::par_row_blocks(g.data_mut(), out_dim * in_dim, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(out_dim * in_dim).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let xrow = xv.row(i0 + ri);
                            for (i, &xi) in xrow.iter().enumerate() {
                                if xi == 0.0 {
                                    continue;
                                }
                                let oblk = &mut orow[i * out_dim..(i + 1) * out_dim];
                                simd::axpy(oblk, grow, xi);
                            }
                        }
                    });
                    out.push((w, g));
                }
                if self.needs(x) {
                    let wv = self.val(w);
                    let mut g = Tensor::scratch_pooled(m, in_dim);
                    let threads = pool::threads_for(m, m * out_dim * in_dim);
                    pool::par_row_blocks(g.data_mut(), in_dim, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(in_dim).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let wrow = wv.row(i0 + ri);
                            for (i, oi) in orow.iter_mut().enumerate() {
                                *oi = linalg::dot(&wrow[i * out_dim..(i + 1) * out_dim], grow);
                            }
                        }
                    });
                    out.push((x, g));
                }
            }
            Op::BatchNormTrain { x, eps } => {
                if self.needs(x) {
                    let Some(Saved::BnStats { var, .. }) = &self.nodes[i].saved else {
                        unreachable!("BatchNormTrain node missing saved stats");
                    };
                    let (m, n) = y.shape();
                    let mf = m as f32;
                    // Per column: dx = s * (g - mean(g) - y * mean(g ⊙ y))
                    let mut mean_g = vec![0.0f32; n];
                    let mut mean_gy = vec![0.0f32; n];
                    for r in 0..m {
                        let grow = gout.row(r);
                        let yrow = y.row(r);
                        for j in 0..n {
                            mean_g[j] += grow[j];
                            mean_gy[j] += grow[j] * yrow[j];
                        }
                    }
                    for j in 0..n {
                        mean_g[j] /= mf;
                        mean_gy[j] /= mf;
                    }
                    // The column-mean reductions above stay serial (fixed
                    // accumulation order); the per-row combine is independent
                    // across rows and may fan out.
                    let mut g = Tensor::scratch_pooled(m, n);
                    let threads = pool::threads_for(m, m * n);
                    pool::par_row_blocks(g.data_mut(), n, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(n).enumerate() {
                            let grow = gout.row(i0 + ri);
                            let yrow = y.row(i0 + ri);
                            for j in 0..n {
                                let s = 1.0 / (var[j] + eps).sqrt();
                                orow[j] = s * (grow[j] - mean_g[j] - yrow[j] * mean_gy[j]);
                            }
                        }
                    });
                    out.push((x, g));
                }
            }
            Op::NormalizeEval { x, var, eps, .. } => {
                if self.needs(x) {
                    let vv = self.val(var);
                    let (m, n) = gout.shape();
                    let mut g = Tensor::scratch_pooled(m, n);
                    let threads = pool::threads_for(m, m * n);
                    pool::par_row_blocks(g.data_mut(), n, threads, |i0, block| {
                        for (ri, orow) in block.chunks_mut(n).enumerate() {
                            let grow = gout.row(i0 + ri);
                            for j in 0..n {
                                orow[j] = grow[j] / (vv.get(0, j) + eps).sqrt();
                            }
                        }
                    });
                    out.push((x, g));
                }
            }
            Op::BceWithLogits { logits, labels } => {
                if self.needs(logits) {
                    let zv = self.val(logits);
                    let yv = self.val(labels);
                    let inv = gout.item() / zv.len().max(1) as f32;
                    let g = zv.par_zip_map(yv, |z, lab| inv * (stable_sigmoid(z) - lab));
                    out.push((logits, g));
                }
            }
        }
        out
    }
}

fn col_sums(t: &Tensor) -> Tensor {
    let (m, n) = t.shape();
    let mut out = Tensor::zeros_pooled(1, n);
    // Row order stays serial (fixed accumulation order per column); lanes
    // split across columns, which are independent accumulators.
    for r in 0..m {
        simd::acc(out.row_mut(0), t.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_chain() {
        // loss = mean((a*b + a)^2); check via hand computation on scalars.
        let mut g = Graph::new();
        let a = g.input_with_grad(Tensor::scalar(2.0));
        let b = g.input_with_grad(Tensor::scalar(3.0));
        let ab = g.mul(a, b);
        let s = g.add(ab, a); // 8
        let sq = g.square(s); // 64
        let loss = g.mean_all(sq);
        g.backward(loss);
        // d/da = 2*s*(b+1) = 2*8*4 = 64 ; d/db = 2*s*a = 32
        assert!((g.grad(a).unwrap().item() - 64.0).abs() < 1e-4);
        assert!((g.grad(b).unwrap().item() - 32.0).abs() < 1e-4);
    }

    #[test]
    fn grads_accumulate_across_consumers() {
        let mut g = Graph::new();
        let a = g.input_with_grad(Tensor::scalar(3.0));
        let x = g.add(a, a); // 2a
        let y = g.mul(a, x); // 2a^2
        let loss = g.sum_all(y);
        g.backward(loss);
        // d(2a^2)/da = 4a = 12
        assert!((g.grad(a).unwrap().item() - 12.0).abs() < 1e-4);
    }

    #[test]
    fn no_grad_leaf_untouched() {
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(1.0));
        let b = g.input_with_grad(Tensor::scalar(2.0));
        let c = g.mul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        assert!(g.grad(a).is_none());
        assert!(g.grad(b).is_some());
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn non_scalar_loss_panics() {
        let mut g = Graph::new();
        let a = g.input_with_grad(Tensor::zeros(2, 2));
        let b = g.relu(a);
        g.backward(b);
    }

    #[test]
    fn bce_gradient_sign() {
        let mut g = Graph::new();
        let z = g.input_with_grad(Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let y = g.input(Tensor::from_vec(2, 1, vec![1.0, 0.0]));
        let loss = g.bce_with_logits(z, y);
        g.backward(loss);
        let gz = g.grad(z).unwrap();
        assert!(gz.get(0, 0) < 0.0, "positive label pushes logit up");
        assert!(gz.get(1, 0) > 0.0, "negative label pushes logit down");
    }
}
