//! Seeded randomness and weight initialization.
//!
//! Every stochastic component in the reproduction takes an explicit seed so
//! experiments are deterministic and the paper's "average of five repetitions"
//! protocol can be driven by seeds `1..=5`.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used across the workspace (ChaCha-based `StdRng`).
pub struct Prng {
    inner: StdRng,
    /// Cached second value from the Box-Muller transform.
    spare_normal: Option<f32>,
}

impl Prng {
    /// Create an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derive an independent child RNG; `stream` disambiguates sub-generators
    /// created from the same parent.
    pub fn fork(&mut self, stream: u64) -> Prng {
        let s: u64 = self.inner.gen::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Prng::seeded(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Prng::below(0)");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.inner.gen::<f64>()) < p
    }

    /// Standard normal via Box-Muller (keeps the workspace free of extra
    /// distribution crates).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1: f32 = 1.0 - self.inner.gen::<f32>();
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Zipf-like rank sample over `n` items with exponent `s`: the classic
    /// heavy-tailed popularity model used for city/item traffic. Returns a
    /// 0-based rank (0 = most popular).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF on the (approximate) continuous Zipf distribution.
        let u = self.inner.gen::<f64>().max(1e-12);
        if (s - 1.0).abs() < 1e-9 {
            let hmax = (n as f64 + 1.0).ln();
            let x = (u * hmax).exp() - 1.0;
            (x as usize).min(n - 1)
        } else {
            let p = 1.0 - s;
            let hmax = ((n as f64 + 1.0).powf(p) - 1.0) / p;
            let x = (u * hmax * p + 1.0).powf(1.0 / p) - 1.0;
            (x as usize).min(n - 1)
        }
    }

    /// Sample an index from unnormalized non-negative weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.below(weights.len());
        }
        let mut target = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Tensor with i.i.d. `N(0, std^2)` entries.
    pub fn randn(&mut self, rows: usize, cols: usize, std: f32) -> Tensor {
        Tensor::from_fn(rows, cols, |_, _| self.normal() * std)
    }

    /// Tensor with i.i.d. `U(lo, hi)` entries.
    pub fn rand_uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
        Tensor::from_fn(rows, cols, |_, _| self.uniform_range(lo, hi))
    }

    /// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.rand_uniform(fan_in, fan_out, -bound, bound)
    }

    /// He/Kaiming normal initialization (for ReLU-family activations).
    pub fn he(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        self.randn(fan_in, fan_out, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::seeded(7);
        let mut b = Prng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::seeded(42);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..n {
            let x = rng.normal() as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = Prng::seeded(3);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[rng.zipf(10, 1.1)] += 1;
        }
        assert!(counts[0] > counts[4], "head should dominate: {counts:?}");
        assert!(counts[0] > counts[9] * 3, "tail should be rare: {counts:?}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = Prng::seeded(11);
        let mut hits = [0usize; 3];
        for _ in 0..30_000 {
            hits[rng.weighted(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(hits[1], 0);
        assert!(hits[2] > hits[0] * 2);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = Prng::seeded(5);
        let w = rng.xavier(100, 50);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(w.max_abs() <= bound + 1e-6);
        assert!(w.max_abs() > bound * 0.5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seeded(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
