//! Batch normalization with running statistics (Eq. 14 of the paper) and the
//! normalize-only core needed by BASM's Fusion BNs (Eq. 17).

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// 1-D batch normalization over the feature dimension.
///
/// In training mode the batch's own statistics normalize the activations and
/// update the running estimates; in inference mode the running estimates are
/// used. `forward` applies the learned affine (γ, β); [`BatchNorm1d::normalize`]
/// exposes the affine-free core so callers can apply a *modulated* affine —
/// exactly what BASM's Fusion BN does:
/// `γ_bias ⊙ γ ⊙ x̂ + β + β_bias` (Eq. 17).
pub struct BatchNorm1d {
    /// Scale γ `[1, dim]`.
    pub gamma: ParamId,
    /// Shift β `[1, dim]`.
    pub beta: ParamId,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    dim: usize,
}

impl BatchNorm1d {
    /// Register a BN layer over `dim` features.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(1, dim));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(1, dim));
        Self {
            gamma,
            beta,
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
            dim,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The affine-free normalization `x̂ = (x - μ)/√(σ² + ε)`.
    ///
    /// Training mode uses (and records) batch statistics; inference mode uses
    /// the running estimates.
    pub fn normalize(&mut self, g: &mut Graph, x: Var, training: bool) -> Var {
        assert_eq!(g.value(x).cols(), self.dim, "BatchNorm1d: width mismatch");
        if training {
            let out = g.batch_norm_train(x, self.eps);
            let m = g.value(x).rows();
            let (mean, var) = g.bn_saved(out).expect("BN stats saved in training mode");
            // Normalization uses the biased batch variance (÷ m), but the
            // running estimate tracks the *population* variance, so fold in
            // the n/(n-1) Bessel correction — matching torch/TF semantics.
            let bessel = if m > 1 { m as f32 / (m as f32 - 1.0) } else { 1.0 };
            for j in 0..self.dim {
                self.running_mean[j] =
                    (1.0 - self.momentum) * self.running_mean[j] + self.momentum * mean[j];
                self.running_var[j] = (1.0 - self.momentum) * self.running_var[j]
                    + self.momentum * bessel * var[j];
            }
            out
        } else {
            let mean = g.input(Tensor::row_vec(&self.running_mean));
            let var = g.input(Tensor::row_vec(&self.running_var));
            g.normalize_eval(x, mean, var, self.eps)
        }
    }

    /// Standard BN: normalize then apply the learned affine `γ x̂ + β`.
    pub fn forward(
        &mut self,
        g: &mut Graph,
        store: &ParamStore,
        x: Var,
        training: bool,
    ) -> Var {
        let xhat = self.normalize(g, x, training);
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        let scaled = g.mul_row(xhat, gamma);
        g.add_row(scaled, beta)
    }

    /// Running mean estimate (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance estimate (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Overwrite the running statistics (checkpoint restore).
    pub fn import_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.dim, "import_stats: mean width");
        assert_eq!(var.len(), self.dim, "import_stats: var width");
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }

    /// Trainable scalars (γ and β).
    pub fn num_params(&self) -> usize {
        2 * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn training_output_is_standardized() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 3);
        let mut rng = Prng::seeded(1);
        let x = rng.randn(64, 3, 5.0).map(|v| v + 10.0);
        let mut g = Graph::new();
        let xv = g.input(x);
        let y = bn.forward(&mut g, &store, xv, true);
        let out = g.value(y);
        for j in 0..3 {
            let col: Vec<f32> = (0..64).map(|r| out.get(r, j)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "col {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "col {j} var {var}");
        }
    }

    #[test]
    fn running_stats_approach_distribution() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 1);
        let mut rng = Prng::seeded(2);
        for _ in 0..200 {
            let x = rng.randn(128, 1, 2.0).map(|v| v + 4.0);
            let mut g = Graph::new();
            let xv = g.input(x);
            bn.normalize(&mut g, xv, true);
        }
        assert!((bn.running_mean()[0] - 4.0).abs() < 0.3, "{}", bn.running_mean()[0]);
        assert!((bn.running_var()[0] - 4.0).abs() < 0.8, "{}", bn.running_var()[0]);
    }

    #[test]
    fn running_stats_pin_known_batch() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 1);
        let mut g = Graph::new();
        // Batch [1,2,3,4]: mean 2.5, biased var 1.25, unbiased var 5/3.
        let xv = g.input(Tensor::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]));
        let out = bn.normalize(&mut g, xv, true);
        // running_mean = 0.9*0 + 0.1*2.5; running_var = 0.9*1 + 0.1*(5/3).
        assert!((bn.running_mean()[0] - 0.25).abs() < 1e-6, "{}", bn.running_mean()[0]);
        assert!(
            (bn.running_var()[0] - (0.9 + 0.1 * 5.0 / 3.0)).abs() < 1e-6,
            "{}",
            bn.running_var()[0]
        );
        // The normalized output itself still uses the biased batch variance.
        let (mean, var) = g.bn_saved(out).unwrap();
        assert!((mean[0] - 2.5).abs() < 1e-6);
        assert!((var[0] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 1);
        let mut rng = Prng::seeded(3);
        for _ in 0..100 {
            let x = rng.randn(128, 1, 1.0).map(|v| v + 2.0);
            let mut g = Graph::new();
            let xv = g.input(x);
            bn.normalize(&mut g, xv, true);
        }
        // At inference a constant input equal to the running mean maps to ~0.
        let mut g = Graph::new();
        let xv = g.input(Tensor::full(4, 1, bn.running_mean()[0]));
        let y = bn.forward(&mut g, &store, xv, false);
        assert!(g.value(y).max_abs() < 0.05, "{:?}", g.value(y));
    }

    #[test]
    fn gradient_flows_through_bn() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 2);
        let mut rng = Prng::seeded(4);
        let mut g = Graph::new();
        let x = g.input_with_grad(rng.randn(8, 2, 1.0));
        let y = bn.forward(&mut g, &store, x, true);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        g.backward(loss);
        store.accumulate_grads(&g);
        assert!(g.grad(x).is_some());
        assert!(store.grad(bn.gamma).max_abs() > 0.0);
    }
}
