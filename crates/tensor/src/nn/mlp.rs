//! Multi-layer perceptron tower.

use crate::graph::{Graph, Var};
use crate::nn::linear::Linear;
use crate::params::ParamStore;
use crate::rng::Prng;

/// Activation function applied between (and optionally after) layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Identity.
    None,
    Relu,
    /// Leaky ReLU with the given negative slope — the paper's activation
    /// (§III-A4); 0.01 unless stated otherwise.
    LeakyRelu(f32),
    Sigmoid,
    Tanh,
}

impl Activation {
    /// Apply the activation to a node.
    pub fn apply(&self, g: &mut Graph, x: Var) -> Var {
        match *self {
            Activation::None => x,
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu(s) => g.leaky_relu(x, s),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
        }
    }
}

/// A stack of [`Linear`] layers with a shared hidden activation. The final
/// layer is linear (no activation) — the usual CTR-tower shape where the last
/// output feeds a sigmoid/BCE head.
pub struct Mlp {
    layers: Vec<Linear>,
    act: Activation,
}

impl Mlp {
    /// Build from a dims spec: `&[in, h1, h2, ..., out]` (at least 2 entries).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Prng,
        name: &str,
        dims: &[usize],
        act: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp: need at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1], true))
            .collect();
        Self { layers, act }
    }

    /// Forward pass; hidden activations between layers, linear output.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i < last {
                h = self.act.apply(g, h);
            }
        }
        h
    }

    /// The individual layers (used by towers that interleave normalization).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The hidden activation.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Total trainable scalars.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn shapes_through_stack() {
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(1);
        let mlp = Mlp::new(&mut store, &mut rng, "t", &[8, 16, 4, 1], Activation::LeakyRelu(0.01));
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 1);
        assert_eq!(mlp.num_params(), 8 * 16 + 16 + 16 * 4 + 4 + 4 + 1);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(3, 8));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (3, 1));
    }

    #[test]
    fn learns_xor() {
        use crate::optim::{Adam, Optimizer};
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(7);
        let mlp = Mlp::new(&mut store, &mut rng, "xor", &[2, 8, 1], Activation::Tanh);
        let xs = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let ys = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::default_params();
        let mut last = f32::MAX;
        for _ in 0..600 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.input(xs.clone());
            let y = g.input(ys.clone());
            let logits = mlp.forward(&mut g, &store, x);
            let loss = g.bce_with_logits(logits, y);
            g.backward(loss);
            store.accumulate_grads(&g);
            opt.step(&mut store, 0.05);
            last = g.value(loss).item();
        }
        assert!(last < 0.05, "XOR loss {last}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(1);
        Mlp::new(&mut store, &mut rng, "bad", &[4], Activation::Relu);
    }
}
