//! Sparse embedding tables with per-row Adagrad state.
//!
//! Industrial CTR systems keep embedding parameters out of the dense
//! optimizer: lookups touch a handful of rows per batch and updates are
//! scatter-applied with per-coordinate Adagrad. We mirror that split —
//! [`EmbeddingStore::lookup`] produces a gradient-requiring *leaf* on the
//! autograd tape and records which rows it came from; after `backward`,
//! [`EmbeddingStore::apply_grads`] drains those records and applies sparse
//! Adagrad updates.
//!
//! Row 0 of every table is the padding/OOV row: it stays frozen at zero so
//! padded sequence positions contribute nothing even without masking.
//!
//! ## Backends
//!
//! A table's rows live either in RAM `Vec<f32>`s (the default) or in an
//! mmap-backed pack directory ([`crate::packstore`]), selected per store by
//! `BASM_EMB_STORE=ram|pack` at creation time. Records round-trip f32 bits
//! exactly, and both backends run the same update arithmetic in the same
//! order, so the choice is invisible to results — training trajectories and
//! predictions are bitwise identical (pinned by `tests/packstore_backend.rs`
//! and the serving equivalence suite).

use crate::graph::{Graph, Var};
use crate::packstore::{
    self, emb_store_mode, write_manifest, ManifestEntry, PackError, PackOptions, PackTable,
    StoreMode,
};
use crate::rng::Prng;
use crate::tensor::Tensor;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Identifier of a table inside an [`EmbeddingStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(usize);

/// Where a table's records live.
enum Backing {
    /// Flat RAM buffers (the seed behavior).
    Ram { weights: Vec<f32>, accum: Vec<f32> },
    /// Pack directory: mmap'd base shards + overlay + hot-row cache.
    Pack(PackTable),
}

/// A single embedding matrix `[rows, dim]` with Adagrad accumulators.
pub struct EmbeddingTable {
    name: String,
    rows: usize,
    dim: usize,
    backing: Backing,
    /// Monotonic write version: bumped by every operation that can change a
    /// served row — online-update writes ([`EmbeddingTable::apply_grad`]),
    /// checkpoint restores ([`EmbeddingTable::overwrite`] /
    /// [`EmbeddingTable::attach_pack`]) and delta-log flushes. Downstream
    /// caches (the serving memo tier, DESIGN.md §12) snapshot this to detect
    /// in-place model mutation without comparing any row bytes.
    version: u64,
}

impl EmbeddingTable {
    /// Create a table with `N(0, init_std²)` entries; row 0 is zeroed
    /// (padding). Always starts RAM-backed so the RNG draws are identical
    /// whatever backend the store later selects; see
    /// [`EmbeddingTable::to_pack`].
    pub fn new(rng: &mut Prng, name: impl Into<String>, rows: usize, dim: usize, init_std: f32) -> Self {
        assert!(rows >= 1 && dim >= 1, "EmbeddingTable: empty shape");
        let mut weights = Vec::with_capacity(rows * dim);
        for _ in 0..rows * dim {
            weights.push(rng.normal() * init_std);
        }
        weights[..dim].iter_mut().for_each(|w| *w = 0.0);
        let accum = vec![0.0; rows * dim];
        Self { name: name.into(), rows, dim, backing: Backing::Ram { weights, accum }, version: 0 }
    }

    /// Current write version (see the field docs). Two equal readings prove
    /// no row changed in between.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vocabulary size (including the padding row).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the rows live in a pack directory rather than RAM.
    pub fn is_pack(&self) -> bool {
        matches!(self.backing, Backing::Pack(_))
    }

    /// The pack table behind this table, when pack-backed.
    pub fn pack(&self) -> Option<&PackTable> {
        match &self.backing {
            Backing::Pack(p) => Some(p),
            Backing::Ram { .. } => None,
        }
    }

    fn check_id(&self, id: u32) {
        assert!(
            (id as usize) < self.rows,
            "embedding id {id} out of {} rows of {}",
            self.rows,
            self.name
        );
    }

    /// The embedding of a single id.
    pub fn row(&self, id: u32) -> &[f32] {
        self.check_id(id);
        match &self.backing {
            Backing::Ram { weights, .. } => {
                &weights[id as usize * self.dim..(id as usize + 1) * self.dim]
            }
            Backing::Pack(p) => &p.record(id)[..self.dim],
        }
    }

    /// The Adagrad accumulator row of a single id.
    pub fn accum_row(&self, id: u32) -> &[f32] {
        self.check_id(id);
        match &self.backing {
            Backing::Ram { accum, .. } => {
                &accum[id as usize * self.dim..(id as usize + 1) * self.dim]
            }
            Backing::Pack(p) => &p.record(id)[self.dim..],
        }
    }

    /// Gather `ids` into a dense `[ids.len(), dim]` tensor, bypassing the
    /// hot-row cache (read-only callers).
    pub fn gather(&self, ids: &[u32]) -> Tensor {
        let mut out = Tensor::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(id));
        }
        out
    }

    /// Gather through the hot-row cache when pack-backed (the training and
    /// serving hot path); identical bits to [`EmbeddingTable::gather`].
    pub fn gather_cached(&mut self, ids: &[u32]) -> Tensor {
        match &mut self.backing {
            Backing::Ram { .. } => self.gather(ids),
            Backing::Pack(p) => {
                let dim = self.dim;
                let mut out = Tensor::zeros(ids.len(), dim);
                for (r, &id) in ids.iter().enumerate() {
                    assert!(
                        (id as usize) < self.rows,
                        "embedding id {id} out of {} rows of {}",
                        self.rows,
                        self.name
                    );
                    out.row_mut(r).copy_from_slice(&p.record_cached(id)[..dim]);
                }
                out
            }
        }
    }

    /// Scatter-apply Adagrad updates: `grad` is `[ids.len(), dim]`. Duplicate
    /// ids are accumulated before the update (one Adagrad step per distinct
    /// row per call). Row 0 is skipped (frozen padding).
    pub fn apply_grad(&mut self, ids: &[u32], grad: &Tensor, lr: f32, eps: f32) {
        assert_eq!(grad.shape(), (ids.len(), self.dim), "apply_grad shape mismatch");
        let dim = self.dim;
        let mut by_row: HashMap<u32, Vec<f32>> = HashMap::new();
        for (r, &id) in ids.iter().enumerate() {
            if id == 0 {
                continue;
            }
            self.check_id(id);
            let acc = by_row.entry(id).or_insert_with(|| vec![0.0; dim]);
            for (a, &g) in acc.iter_mut().zip(grad.row(r).iter()) {
                *a += g;
            }
        }
        if !by_row.is_empty() {
            self.version += 1;
        }
        // Distinct rows update independent slots, so the (hash-ordered)
        // iteration order cannot change the final state — and both backings
        // run the exact same per-coordinate arithmetic.
        match &mut self.backing {
            Backing::Ram { weights, accum } => {
                for (id, gacc) in by_row {
                    let base = id as usize * dim;
                    for (j, &g) in gacc.iter().enumerate() {
                        let slot = base + j;
                        accum[slot] += g * g;
                        weights[slot] -= lr * g / (accum[slot].sqrt() + eps);
                    }
                }
            }
            Backing::Pack(p) => {
                for (id, gacc) in by_row {
                    let mut rec = p.record_cached(id).to_vec();
                    for (j, &g) in gacc.iter().enumerate() {
                        rec[dim + j] += g * g;
                        rec[j] -= lr * g / (rec[dim + j].sqrt() + eps);
                    }
                    p.write_record(id, &rec);
                }
            }
        }
    }

    /// Trainable scalars.
    pub fn num_params(&self) -> usize {
        self.rows * self.dim
    }

    /// Heap bytes held by weights + optimizer state. For a pack-backed table
    /// this counts only resident rows (overlay, pending deltas, cache) — the
    /// mmap'd base pages belong to the OS page cache.
    pub fn memory_bytes(&self) -> usize {
        match &self.backing {
            Backing::Ram { weights, accum } => {
                (weights.len() + accum.len()) * std::mem::size_of::<f32>()
            }
            Backing::Pack(p) => p.resident_bytes(),
        }
    }

    /// Flat copies of the weights and accumulators (checkpoint save).
    pub fn snapshot(&self) -> (Vec<f32>, Vec<f32>) {
        match &self.backing {
            Backing::Ram { weights, accum } => (weights.clone(), accum.clone()),
            Backing::Pack(p) => p.snapshot(),
        }
    }

    /// Overwrite weights and accumulators from flat `rows*dim` buffers
    /// (checkpoint restore).
    pub fn overwrite(&mut self, weights: &[f32], accum: &[f32]) {
        assert_eq!(weights.len(), self.rows * self.dim, "overwrite: weights size");
        assert_eq!(accum.len(), self.rows * self.dim, "overwrite: accum size");
        self.version += 1;
        match &mut self.backing {
            Backing::Ram { weights: w, accum: a } => {
                w.copy_from_slice(weights);
                a.copy_from_slice(accum);
            }
            Backing::Pack(p) => {
                p.rewrite(weights, accum).expect("pack rewrite failed");
            }
        }
    }

    /// Convert a RAM-backed table to pack backing inside `dir` (writing its
    /// shards + index there). No-op when already pack-backed. The converted
    /// table serves bit-identical rows.
    pub fn to_pack(&mut self, dir: &Path, opts: PackOptions) -> Result<(), PackError> {
        if self.is_pack() {
            return Ok(());
        }
        let (weights, accum) = self.snapshot();
        packstore::write_table(dir, &self.name, self.rows, self.dim, &weights, &accum, opts)?;
        self.backing =
            Backing::Pack(PackTable::open(dir, &self.name, self.rows, self.dim, opts)?);
        Ok(())
    }

    /// Swap this table's backing to an existing pack directory (warm start):
    /// opens the shards zero-copy and replays deltas, discarding the current
    /// in-RAM values without reading a single record.
    pub fn attach_pack(&mut self, dir: &Path, opts: PackOptions) -> Result<(), PackError> {
        self.backing =
            Backing::Pack(PackTable::open(dir, &self.name, self.rows, self.dim, opts)?);
        self.version += 1;
        Ok(())
    }
}

struct PendingLookup {
    table: TableId,
    ids: Vec<u32>,
    var: Var,
}

/// A set of named embedding tables plus the lookup journal that connects them
/// to an autograd [`Graph`].
pub struct EmbeddingStore {
    tables: Vec<EmbeddingTable>,
    by_name: HashMap<String, TableId>,
    journal: Vec<PendingLookup>,
    mode: StoreMode,
    pack_dir: Option<PathBuf>,
    owns_dir: bool,
    /// Sparse-Adagrad epsilon shared by all tables.
    pub eps: f32,
}

impl Default for EmbeddingStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingStore {
    /// An empty store. The backend of tables added later is fixed here from
    /// `BASM_EMB_STORE` (or the [`packstore::set_emb_store`] override).
    pub fn new() -> Self {
        Self {
            tables: Vec::new(),
            by_name: HashMap::new(),
            journal: Vec::new(),
            mode: emb_store_mode(),
            pack_dir: None,
            owns_dir: false,
            eps: 1e-6,
        }
    }

    /// The backend newly added tables get.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The pack directory backing this store, if any.
    pub fn pack_dir(&self) -> Option<&Path> {
        self.pack_dir.as_deref()
    }

    fn ensure_pack_dir(&mut self) -> PathBuf {
        if self.pack_dir.is_none() {
            let dir = packstore::fresh_temp_dir();
            std::fs::create_dir_all(&dir).expect("create pack temp dir");
            self.pack_dir = Some(dir);
            self.owns_dir = true;
        }
        self.pack_dir.clone().expect("just ensured")
    }

    /// Register a table; names must be unique. In pack mode the freshly
    /// initialized rows are immediately written to the store's pack directory
    /// (RNG draws happen first either way, so both backends start from the
    /// same bits).
    pub fn add_table(
        &mut self,
        rng: &mut Prng,
        name: impl Into<String>,
        rows: usize,
        dim: usize,
        init_std: f32,
    ) -> TableId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate table {name:?}");
        let id = TableId(self.tables.len());
        self.by_name.insert(name.clone(), id);
        let mut table = EmbeddingTable::new(rng, name, rows, dim, init_std);
        if self.mode == StoreMode::Pack {
            let dir = self.ensure_pack_dir();
            table.to_pack(&dir, PackOptions::default()).expect("pack conversion failed");
        }
        self.tables.push(table);
        id
    }

    /// The table behind an id.
    pub fn table(&self, id: TableId) -> &EmbeddingTable {
        &self.tables[id.0]
    }

    /// Find a table by name.
    pub fn id_of(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Gather `ids` onto the tape as a gradient-requiring leaf `[ids.len(), dim]`
    /// and record the lookup for the later sparse update.
    pub fn lookup(&mut self, g: &mut Graph, table: TableId, ids: &[u32]) -> Var {
        let dense = self.tables[table.0].gather_cached(ids);
        let var = g.input_with_grad(dense);
        self.journal.push(PendingLookup { table, ids: ids.to_vec(), var });
        var
    }

    /// Gather without recording (inference-only lookups). Bypasses the
    /// hot-row cache; results are identical either way.
    pub fn lookup_frozen(&self, g: &mut Graph, table: TableId, ids: &[u32]) -> Var {
        g.input(self.tables[table.0].gather(ids))
    }

    /// Drain the journal, scatter-applying Adagrad updates from the tape's
    /// gradients. Lookups whose leaf received no gradient are skipped.
    pub fn apply_grads(&mut self, g: &Graph, lr: f32) {
        let eps = self.eps;
        for pending in self.journal.drain(..) {
            if let Some(grad) = g.grad(pending.var) {
                self.tables[pending.table.0].apply_grad(&pending.ids, grad, lr, eps);
            }
        }
    }

    /// Discard pending lookups without applying (inference passes).
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// Total trainable scalars across all tables.
    pub fn num_params(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::num_params).sum()
    }

    /// Total heap bytes (weights + Adagrad state; resident rows only for
    /// pack-backed tables).
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::memory_bytes).sum()
    }

    /// Iterate over the registered tables.
    pub fn tables(&self) -> impl Iterator<Item = &EmbeddingTable> {
        self.tables.iter()
    }

    /// Overwrite a table's weights and Adagrad accumulators from flat
    /// `rows*dim` buffers (checkpoint restore). Restoring the accumulators —
    /// not zeroing them — is what makes save → load → continue bitwise equal
    /// to uninterrupted training.
    pub fn overwrite_table(&mut self, id: TableId, weights: &[f32], accum: &[f32]) {
        self.tables[id.0].overwrite(weights, accum);
    }

    /// Append every table's buffered updates to its delta file (no-op for RAM
    /// tables). Returns the total records flushed. Tables that flushed
    /// records get a version bump: the flush is the durability point at which
    /// a training interval's accumulated writes become visible to
    /// cross-process readers, so version watchers treat it as a write.
    pub fn flush_deltas(&mut self) -> std::io::Result<usize> {
        let mut n = 0;
        for t in &mut self.tables {
            if let Backing::Pack(p) = &mut t.backing {
                let flushed = p.flush_deltas()?;
                if flushed > 0 {
                    t.version += 1;
                }
                n += flushed;
            }
        }
        Ok(n)
    }

    /// Sum of all table write versions: a single monotonic counter that
    /// changes whenever **any** table changes (each per-table version only
    /// ever grows, so the sum cannot alias two distinct states). The serving
    /// memo tier snapshots this once per microbatch drain and flushes itself
    /// when it moves (DESIGN.md §12).
    pub fn version_sum(&self) -> u64 {
        self.tables.iter().map(|t| t.version).sum()
    }

    /// Per-table `(name, version)` pairs, in registration order.
    pub fn table_versions(&self) -> Vec<(&str, u64)> {
        self.tables.iter().map(|t| (t.name.as_str(), t.version)).collect()
    }

    /// Fold every pack table's overlay + deltas back into its base shards.
    pub fn compact_packs(&mut self) -> Result<(), PackError> {
        for t in &mut self.tables {
            if let Backing::Pack(p) = &mut t.backing {
                p.compact()?;
            }
        }
        Ok(())
    }

    /// Aggregated hot-row-cache counters across pack tables.
    pub fn cache_stats(&self) -> packstore::CacheStats {
        let mut total = packstore::CacheStats::default();
        for t in &self.tables {
            if let Backing::Pack(p) = &t.backing {
                let s = p.cache_stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.evictions += s.evictions;
            }
        }
        total
    }

    /// Write every table (whatever its backing) into `dir` as a pack
    /// directory with a manifest. Pack tables already living in `dir` are
    /// compacted in place; everything else is snapshotted and packed fresh.
    pub fn export_pack_dir(&mut self, dir: &Path) -> Result<(), PackError> {
        std::fs::create_dir_all(dir).map_err(|e| PackError::io(dir, &e))?;
        let mut entries = Vec::with_capacity(self.tables.len());
        for t in &mut self.tables {
            let n_shards = match &mut t.backing {
                Backing::Pack(p) if p.dir() == dir => {
                    p.compact()?;
                    p.n_shards()
                }
                _ => {
                    let (weights, accum) = t.snapshot();
                    let metas = packstore::write_table(
                        dir,
                        &t.name,
                        t.rows,
                        t.dim,
                        &weights,
                        &accum,
                        PackOptions::default(),
                    )?;
                    metas.len()
                }
            };
            entries.push(ManifestEntry {
                name: t.name.clone(),
                rows: t.rows as u64,
                dim: t.dim as u32,
                n_shards: n_shards as u32,
            });
        }
        write_manifest(dir, &entries)
    }

    /// Warm-start every registered table from a pack directory written by
    /// [`EmbeddingStore::export_pack_dir`]: geometry is validated against the
    /// manifest, shards are opened zero-copy, deltas replayed — **no record
    /// is deserialized**. Tables must be registered (names + shapes) first.
    pub fn attach_pack_dir(&mut self, dir: &Path) -> Result<(), PackError> {
        let manifest = packstore::read_manifest(dir)?;
        let by_name: HashMap<&str, &ManifestEntry> =
            manifest.iter().map(|e| (e.name.as_str(), e)).collect();
        for t in &self.tables {
            let e = by_name
                .get(t.name.as_str())
                .ok_or_else(|| PackError::MissingTable(t.name.clone()))?;
            if e.rows != t.rows as u64 || e.dim != t.dim as u32 {
                return Err(PackError::ShapeMismatch(format!(
                    "table {:?}: manifest {}x{}, live {}x{}",
                    t.name, e.rows, e.dim, t.rows, t.dim
                )));
            }
        }
        for t in &mut self.tables {
            t.attach_pack(dir, PackOptions::default())?;
        }
        self.mode = StoreMode::Pack;
        self.pack_dir = Some(dir.to_path_buf());
        self.owns_dir = false;
        Ok(())
    }
}

impl Drop for EmbeddingStore {
    fn drop(&mut self) {
        // A store that created its own scratch pack directory cleans it up;
        // attached/exported directories are the caller's (unlinking while
        // mapped is safe on unix — the inode outlives the name).
        if self.owns_dir {
            if let Some(dir) = &self.pack_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_row_is_zero_and_frozen() {
        let mut rng = Prng::seeded(1);
        let mut t = EmbeddingTable::new(&mut rng, "t", 10, 4, 0.1);
        assert_eq!(t.row(0), &[0.0; 4]);
        let grad = Tensor::ones(1, 4);
        t.apply_grad(&[0], &grad, 0.1, 1e-6);
        assert_eq!(t.row(0), &[0.0; 4]);
    }

    #[test]
    fn gather_matches_rows() {
        let mut rng = Prng::seeded(2);
        let t = EmbeddingTable::new(&mut rng, "t", 10, 3, 0.1);
        let got = t.gather(&[3, 7, 3]);
        assert_eq!(got.row(0), t.row(3));
        assert_eq!(got.row(1), t.row(7));
        assert_eq!(got.row(2), t.row(3));
    }

    #[test]
    fn duplicate_ids_accumulate_once() {
        let mut rng = Prng::seeded(3);
        let mut t = EmbeddingTable::new(&mut rng, "t", 4, 2, 0.0);
        // All weights zero; apply the same grad to id 1 via two duplicate rows.
        let grad = Tensor::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        t.apply_grad(&[1, 1], &grad, 1.0, 0.0);
        // Accumulated g=2, acc=4, update = 2/sqrt(4) = 1.
        assert!((t.row(1)[0] + 1.0).abs() < 1e-6, "{:?}", t.row(1));
    }

    #[test]
    fn store_end_to_end_update() {
        let mut rng = Prng::seeded(4);
        let mut store = EmbeddingStore::new();
        let tid = store.add_table(&mut rng, "item", 100, 4, 0.05);
        let before = store.table(tid).row(5).to_vec();

        let mut g = Graph::new();
        let e = store.lookup(&mut g, tid, &[5, 6]);
        let s = g.square(e);
        let loss = g.mean_all(s);
        g.backward(loss);
        store.apply_grads(&g, 0.5);

        let after = store.table(tid).row(5);
        assert_ne!(before.as_slice(), after, "row 5 should move");
    }

    #[test]
    fn frozen_lookup_does_not_journal() {
        let mut rng = Prng::seeded(5);
        let mut store = EmbeddingStore::new();
        let tid = store.add_table(&mut rng, "item", 10, 2, 0.05);
        let before = store.table(tid).row(1).to_vec();
        let mut g = Graph::new();
        let e = store.lookup_frozen(&mut g, tid, &[1]);
        assert_eq!(g.value(e).row(0), before.as_slice());
        // No journal entry means apply_grads is a no-op.
        store.apply_grads(&g, 1.0);
        assert_eq!(store.table(tid).row(1), before.as_slice());
    }

    #[test]
    fn out_of_range_panics() {
        let mut rng = Prng::seeded(6);
        let t = EmbeddingTable::new(&mut rng, "t", 4, 2, 0.1);
        let r = std::panic::catch_unwind(|| t.gather(&[4]));
        assert!(r.is_err());
    }

    #[test]
    fn pack_conversion_serves_identical_rows() {
        let mut rng = Prng::seeded(7);
        let mut ram = EmbeddingTable::new(&mut rng, "conv", 50, 6, 0.1);
        let mut rng2 = Prng::seeded(7);
        let mut packed = EmbeddingTable::new(&mut rng2, "conv", 50, 6, 0.1);
        let dir = packstore::fresh_temp_dir();
        packed.to_pack(&dir, PackOptions::default()).unwrap();
        assert!(packed.is_pack());
        for id in 0..50u32 {
            let a: Vec<u32> = ram.row(id).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = packed.row(id).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "row {id}");
        }
        // Same update on both backings stays bitwise identical.
        let grad = Tensor::from_vec(2, 6, (0..12).map(|i| 0.1 * i as f32).collect());
        ram.apply_grad(&[3, 9], &grad, 0.05, 1e-6);
        packed.apply_grad(&[3, 9], &grad, 0.05, 1e-6);
        for id in [3u32, 9] {
            let a: Vec<u32> = ram.row(id).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = packed.row(id).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "updated row {id}");
            let aa: Vec<u32> = ram.accum_row(id).iter().map(|v| v.to_bits()).collect();
            let ba: Vec<u32> = packed.accum_row(id).iter().map(|v| v.to_bits()).collect();
            assert_eq!(aa, ba, "accum row {id}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_preserves_accumulators() {
        let mut rng = Prng::seeded(8);
        let mut store = EmbeddingStore::new();
        let tid = store.add_table(&mut rng, "t", 5, 2, 0.1);
        let weights = vec![0.5f32; 10];
        let accum = vec![2.0f32; 10];
        store.overwrite_table(tid, &weights, &accum);
        assert_eq!(store.table(tid).row(3), &[0.5, 0.5]);
        assert_eq!(store.table(tid).accum_row(3), &[2.0, 2.0]);
    }

    /// Write-version contract: reads never bump, every mutating entry point
    /// does, and the store-level sum moves with any table.
    #[test]
    fn versions_bump_on_writes_only() {
        let mut rng = Prng::seeded(11);
        let mut store = EmbeddingStore::new();
        let a = store.add_table(&mut rng, "a", 10, 2, 0.1);
        let b = store.add_table(&mut rng, "b", 10, 2, 0.1);
        let base = store.version_sum();

        // Reads are free.
        let _ = store.table(a).row(3);
        let _ = store.table(a).gather(&[1, 2]);
        assert_eq!(store.version_sum(), base);

        // A sparse update bumps exactly the touched table.
        let grad = Tensor::ones(1, 2);
        store.tables[a.0].apply_grad(&[3], &grad, 0.1, 1e-6);
        assert_eq!(store.table(a).version(), 1);
        assert_eq!(store.table(b).version(), 0);
        assert_eq!(store.version_sum(), base + 1);

        // A padding-only update touches no row: no bump.
        store.tables[a.0].apply_grad(&[0], &grad, 0.1, 1e-6);
        assert_eq!(store.table(a).version(), 1);

        // Checkpoint restore is a write.
        let (w, acc) = store.table(b).snapshot();
        store.overwrite_table(b, &w, &acc);
        assert_eq!(store.table(b).version(), 1);

        let names: Vec<&str> = store.table_versions().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn export_then_attach_round_trips() {
        let mut rng = Prng::seeded(9);
        let mut store = EmbeddingStore::new();
        let a = store.add_table(&mut rng, "a", 20, 3, 0.1);
        let b = store.add_table(&mut rng, "b", 7, 2, 0.1);
        let dir = packstore::fresh_temp_dir();
        store.export_pack_dir(&dir).unwrap();

        // Second store, same names/shapes, different values — attach swaps in
        // the packed rows without a deserialize pass.
        let mut rng2 = Prng::seeded(99);
        let mut store2 = EmbeddingStore::new();
        let a2 = store2.add_table(&mut rng2, "a", 20, 3, 0.1);
        let b2 = store2.add_table(&mut rng2, "b", 7, 2, 0.1);
        store2.attach_pack_dir(&dir).unwrap();
        for id in 0..20u32 {
            assert_eq!(store.table(a).row(id), store2.table(a2).row(id));
        }
        for id in 0..7u32 {
            assert_eq!(store.table(b).row(id), store2.table(b2).row(id));
        }

        // Shape mismatch is rejected.
        let mut rng3 = Prng::seeded(5);
        let mut store3 = EmbeddingStore::new();
        store3.add_table(&mut rng3, "a", 21, 3, 0.1);
        store3.add_table(&mut rng3, "b", 7, 2, 0.1);
        assert!(matches!(store3.attach_pack_dir(&dir), Err(PackError::ShapeMismatch(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
