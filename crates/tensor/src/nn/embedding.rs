//! Sparse embedding tables with per-row Adagrad state.
//!
//! Industrial CTR systems keep embedding parameters out of the dense
//! optimizer: lookups touch a handful of rows per batch and updates are
//! scatter-applied with per-coordinate Adagrad. We mirror that split —
//! [`EmbeddingStore::lookup`] produces a gradient-requiring *leaf* on the
//! autograd tape and records which rows it came from; after `backward`,
//! [`EmbeddingStore::apply_grads`] drains those records and applies sparse
//! Adagrad updates.
//!
//! Row 0 of every table is the padding/OOV row: it stays frozen at zero so
//! padded sequence positions contribute nothing even without masking.

use crate::graph::{Graph, Var};
use crate::rng::Prng;
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Identifier of a table inside an [`EmbeddingStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(usize);

/// A single embedding matrix `[rows, dim]` with Adagrad accumulators.
pub struct EmbeddingTable {
    name: String,
    rows: usize,
    dim: usize,
    weights: Vec<f32>,
    accum: Vec<f32>,
}

impl EmbeddingTable {
    /// Create a table with `N(0, init_std²)` entries; row 0 is zeroed
    /// (padding).
    pub fn new(rng: &mut Prng, name: impl Into<String>, rows: usize, dim: usize, init_std: f32) -> Self {
        assert!(rows >= 1 && dim >= 1, "EmbeddingTable: empty shape");
        let mut weights = Vec::with_capacity(rows * dim);
        for _ in 0..rows * dim {
            weights.push(rng.normal() * init_std);
        }
        weights[..dim].iter_mut().for_each(|w| *w = 0.0);
        Self { name: name.into(), rows, dim, weights, accum: vec![0.0; rows * dim] }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vocabulary size (including the padding row).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding of a single id.
    pub fn row(&self, id: u32) -> &[f32] {
        let id = id as usize;
        assert!(id < self.rows, "embedding id {id} out of {} rows of {}", self.rows, self.name);
        &self.weights[id * self.dim..(id + 1) * self.dim]
    }

    /// Gather `ids` into a dense `[ids.len(), dim]` tensor.
    pub fn gather(&self, ids: &[u32]) -> Tensor {
        let mut out = Tensor::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(id));
        }
        out
    }

    /// Scatter-apply Adagrad updates: `grad` is `[ids.len(), dim]`. Duplicate
    /// ids are accumulated before the update (one Adagrad step per distinct
    /// row per call). Row 0 is skipped (frozen padding).
    pub fn apply_grad(&mut self, ids: &[u32], grad: &Tensor, lr: f32, eps: f32) {
        assert_eq!(grad.shape(), (ids.len(), self.dim), "apply_grad shape mismatch");
        let mut by_row: HashMap<u32, Vec<f32>> = HashMap::new();
        for (r, &id) in ids.iter().enumerate() {
            if id == 0 {
                continue;
            }
            let acc = by_row.entry(id).or_insert_with(|| vec![0.0; self.dim]);
            for (a, &g) in acc.iter_mut().zip(grad.row(r).iter()) {
                *a += g;
            }
        }
        for (id, gacc) in by_row {
            let base = id as usize * self.dim;
            for (j, &g) in gacc.iter().enumerate() {
                let slot = base + j;
                self.accum[slot] += g * g;
                self.weights[slot] -= lr * g / (self.accum[slot].sqrt() + eps);
            }
        }
    }

    /// Trainable scalars.
    pub fn num_params(&self) -> usize {
        self.rows * self.dim
    }

    /// Bytes held by weights + optimizer state.
    pub fn memory_bytes(&self) -> usize {
        (self.weights.len() + self.accum.len()) * std::mem::size_of::<f32>()
    }
}

struct PendingLookup {
    table: TableId,
    ids: Vec<u32>,
    var: Var,
}

/// A set of named embedding tables plus the lookup journal that connects them
/// to an autograd [`Graph`].
#[derive(Default)]
pub struct EmbeddingStore {
    tables: Vec<EmbeddingTable>,
    by_name: HashMap<String, TableId>,
    journal: Vec<PendingLookup>,
    /// Sparse-Adagrad epsilon shared by all tables.
    pub eps: f32,
}

impl EmbeddingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self { tables: Vec::new(), by_name: HashMap::new(), journal: Vec::new(), eps: 1e-6 }
    }

    /// Register a table; names must be unique.
    pub fn add_table(
        &mut self,
        rng: &mut Prng,
        name: impl Into<String>,
        rows: usize,
        dim: usize,
        init_std: f32,
    ) -> TableId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate table {name:?}");
        let id = TableId(self.tables.len());
        self.by_name.insert(name.clone(), id);
        self.tables.push(EmbeddingTable::new(rng, name, rows, dim, init_std));
        id
    }

    /// The table behind an id.
    pub fn table(&self, id: TableId) -> &EmbeddingTable {
        &self.tables[id.0]
    }

    /// Find a table by name.
    pub fn id_of(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Gather `ids` onto the tape as a gradient-requiring leaf `[ids.len(), dim]`
    /// and record the lookup for the later sparse update.
    pub fn lookup(&mut self, g: &mut Graph, table: TableId, ids: &[u32]) -> Var {
        let dense = self.tables[table.0].gather(ids);
        let var = g.input_with_grad(dense);
        self.journal.push(PendingLookup { table, ids: ids.to_vec(), var });
        var
    }

    /// Gather without recording (inference-only lookups).
    pub fn lookup_frozen(&self, g: &mut Graph, table: TableId, ids: &[u32]) -> Var {
        g.input(self.tables[table.0].gather(ids))
    }

    /// Drain the journal, scatter-applying Adagrad updates from the tape's
    /// gradients. Lookups whose leaf received no gradient are skipped.
    pub fn apply_grads(&mut self, g: &Graph, lr: f32) {
        let eps = self.eps;
        for pending in self.journal.drain(..) {
            if let Some(grad) = g.grad(pending.var) {
                self.tables[pending.table.0].apply_grad(&pending.ids, grad, lr, eps);
            }
        }
    }

    /// Discard pending lookups without applying (inference passes).
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// Total trainable scalars across all tables.
    pub fn num_params(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::num_params).sum()
    }

    /// Total bytes (weights + Adagrad state).
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::memory_bytes).sum()
    }

    /// Iterate over the registered tables.
    pub fn tables(&self) -> impl Iterator<Item = &EmbeddingTable> {
        self.tables.iter()
    }

    /// Overwrite a table's weights from a flat `rows*dim` buffer (checkpoint
    /// restore). Optimizer accumulators reset to zero.
    pub fn overwrite_table(&mut self, id: TableId, flat: &[f32]) {
        let t = &mut self.tables[id.0];
        assert_eq!(flat.len(), t.rows * t.dim, "overwrite_table: size mismatch");
        t.weights.copy_from_slice(flat);
        t.accum.iter_mut().for_each(|a| *a = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_row_is_zero_and_frozen() {
        let mut rng = Prng::seeded(1);
        let mut t = EmbeddingTable::new(&mut rng, "t", 10, 4, 0.1);
        assert_eq!(t.row(0), &[0.0; 4]);
        let grad = Tensor::ones(1, 4);
        t.apply_grad(&[0], &grad, 0.1, 1e-6);
        assert_eq!(t.row(0), &[0.0; 4]);
    }

    #[test]
    fn gather_matches_rows() {
        let mut rng = Prng::seeded(2);
        let t = EmbeddingTable::new(&mut rng, "t", 10, 3, 0.1);
        let got = t.gather(&[3, 7, 3]);
        assert_eq!(got.row(0), t.row(3));
        assert_eq!(got.row(1), t.row(7));
        assert_eq!(got.row(2), t.row(3));
    }

    #[test]
    fn duplicate_ids_accumulate_once() {
        let mut rng = Prng::seeded(3);
        let mut t = EmbeddingTable::new(&mut rng, "t", 4, 2, 0.0);
        // All weights zero; apply the same grad to id 1 via two duplicate rows.
        let grad = Tensor::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        t.apply_grad(&[1, 1], &grad, 1.0, 0.0);
        // Accumulated g=2, acc=4, update = 2/sqrt(4) = 1.
        assert!((t.row(1)[0] + 1.0).abs() < 1e-6, "{:?}", t.row(1));
    }

    #[test]
    fn store_end_to_end_update() {
        let mut rng = Prng::seeded(4);
        let mut store = EmbeddingStore::new();
        let tid = store.add_table(&mut rng, "item", 100, 4, 0.05);
        let before = store.table(tid).row(5).to_vec();

        let mut g = Graph::new();
        let e = store.lookup(&mut g, tid, &[5, 6]);
        let s = g.square(e);
        let loss = g.mean_all(s);
        g.backward(loss);
        store.apply_grads(&g, 0.5);

        let after = store.table(tid).row(5);
        assert_ne!(before.as_slice(), after, "row 5 should move");
    }

    #[test]
    fn frozen_lookup_does_not_journal() {
        let mut rng = Prng::seeded(5);
        let mut store = EmbeddingStore::new();
        let tid = store.add_table(&mut rng, "item", 10, 2, 0.05);
        let before = store.table(tid).row(1).to_vec();
        let mut g = Graph::new();
        let e = store.lookup_frozen(&mut g, tid, &[1]);
        assert_eq!(g.value(e).row(0), before.as_slice());
        // No journal entry means apply_grads is a no-op.
        store.apply_grads(&g, 1.0);
        assert_eq!(store.table(tid).row(1), before.as_slice());
    }

    #[test]
    fn out_of_range_panics() {
        let mut rng = Prng::seeded(6);
        let t = EmbeddingTable::new(&mut rng, "t", 4, 2, 0.1);
        let r = std::panic::catch_unwind(|| t.gather(&[4]));
        assert!(r.is_err());
    }
}
