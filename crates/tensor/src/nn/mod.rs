//! Neural-network layers composed on top of the autograd [`Graph`].
//!
//! Layers register their dense parameters in a [`ParamStore`] at construction
//! and build tape nodes in `forward`. Sparse parameters (embedding tables)
//! live in [`embedding`] with their own per-row optimizer state, mirroring how
//! industrial CTR systems separate sparse and dense updates.
//!
//! [`Graph`]: crate::graph::Graph
//! [`ParamStore`]: crate::params::ParamStore

pub mod attention;
pub mod batchnorm;
pub mod embedding;
pub mod linear;
pub mod mlp;

pub use attention::{MultiHeadTargetAttention, SelfAttentionLayer, TargetAttention};
pub use batchnorm::BatchNorm1d;
pub use embedding::{EmbeddingStore, EmbeddingTable, TableId};
pub use linear::Linear;
pub use mlp::{Activation, Mlp};
