//! Fully-connected layer.

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};
use crate::rng::Prng;
use crate::tensor::Tensor;

/// A dense affine map `x · W + b` with Xavier-initialized weights.
pub struct Linear {
    /// Weight `[in_dim, out_dim]`.
    pub w: ParamId,
    /// Optional bias `[1, out_dim]`.
    pub b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new layer. `name` scopes the parameter names
    /// (`"{name}.w"`, `"{name}.b"`).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Prng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), rng.xavier(in_dim, out_dim));
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros(1, out_dim)));
        Self { w, b, in_dim, out_dim }
    }

    /// Apply the layer to `x [batch, in_dim]`.
    ///
    /// In inference mode ([`Graph::set_inference`]) with a prepared int8 copy
    /// of the weight ([`ParamStore::prepare_quant`], `BASM_QUANT=int8`), the
    /// GEMM routes through the quantized serve kernel; training and the
    /// default f32 serve path are untouched.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear: input cols {} != in_dim {}",
            g.value(x).cols(),
            self.in_dim
        );
        let w = g.param(store, self.w);
        let h = if g.inference() {
            match store.quant(self.w) {
                Some(qw) => g.matmul_quant(x, w, qw),
                None => g.matmul(x, w),
            }
        } else {
            g.matmul(x, w)
        };
        match self.b {
            Some(b) => {
                let bv = g.param(store, b);
                g.add_row(h, bv)
            }
            None => h,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.in_dim * self.out_dim + if self.b.is_some() { self.out_dim } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(1);
        let layer = Linear::new(&mut store, &mut rng, "fc", 4, 3, true);
        assert_eq!(layer.num_params(), 15);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(2, 4));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 3));
    }

    #[test]
    fn no_bias_variant() {
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(2);
        let layer = Linear::new(&mut store, &mut rng, "fc", 4, 2, false);
        assert_eq!(layer.num_params(), 8);
        assert!(layer.b.is_none());
    }

    #[test]
    fn quant_path_only_in_inference_mode() {
        let _guard = crate::quant::tests_force_quant();
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(5);
        let layer = Linear::new(&mut store, &mut rng, "fc", 8, 3, true);
        store.prepare_quant();
        let x = rng.randn(4, 8, 1.0);

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = layer.forward(&mut g, &store, xv);
        let f32_out = g.value(y).clone();

        let mut gi = Graph::new();
        gi.set_inference(true);
        let xv = gi.input(x);
        let y = layer.forward(&mut gi, &store, xv);
        let q_out = gi.value(y).clone();

        assert_eq!(q_out.shape(), f32_out.shape());
        let mut differs = false;
        for (q, f) in q_out.data().iter().zip(f32_out.data().iter()) {
            assert!(q.is_finite());
            assert!((q - f).abs() < 0.1, "int8 {q} drifted from f32 {f}");
            differs |= q != f;
        }
        assert!(differs, "quantized forward should not be bit-identical to f32");
    }

    #[test]
    fn gradient_reaches_weights() {
        let mut store = ParamStore::new();
        let mut rng = Prng::seeded(3);
        let layer = Linear::new(&mut store, &mut rng, "fc", 3, 1, true);
        let mut g = Graph::new();
        let x = g.input(rng.randn(5, 3, 1.0));
        let y = layer.forward(&mut g, &store, x);
        let loss = g.mean_all(y);
        g.backward(loss);
        store.accumulate_grads(&g);
        assert!(store.grad(layer.w).max_abs() > 0.0);
        assert!(store.grad(layer.b.unwrap()).max_abs() > 0.0);
    }
}
