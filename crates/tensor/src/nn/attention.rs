//! Attention blocks used by the model zoo.
//!
//! * [`TargetAttention`] — DIN's local activation unit: an MLP scores each
//!   behavior against the candidate item.
//! * [`MultiHeadTargetAttention`] — scaled dot-product target attention with
//!   multiple heads; three of these make up the paper's online "Base model"
//!   (a DIN variation over long/short/realtime sequences).
//! * [`SelfAttentionLayer`] — AutoInt's multi-head self-attention over field
//!   embeddings with a residual connection.
//!
//! Sequences are laid out `[batch, seq_len * dim]` (position-major) with a
//! `[batch, seq_len]` 0/1 mask; padded positions are excluded by masked
//! softmax.
//!
//! These blocks compose graph ops exclusively, so the SIMD kernel layer
//! (DESIGN.md §14) rides in underneath: the score matmuls run the
//! lane-parallel micro-kernels and the (masked) softmax's sub-max /
//! normalize passes run the lane-parallel broadcasts, while the max/sum
//! folds stay serial. `BASM_SIMD` therefore never moves attention bits —
//! pinned transitively by `tests/simd_equivalence.rs` and the composite
//! forward/backward pin in `tests/parallel_determinism.rs`.

use crate::graph::{Graph, Var};
use crate::nn::linear::Linear;
use crate::nn::mlp::{Activation, Mlp};
use crate::params::ParamStore;
use crate::rng::Prng;

/// DIN-style target attention: `score(q, k) = MLP([q; k; q-k; q⊙k])`.
pub struct TargetAttention {
    mlp: Mlp,
    dim: usize,
}

impl TargetAttention {
    /// `dim` is the shared query/key width; `hidden` sizes the activation
    /// unit (the DIN paper uses a small tower, e.g. 36).
    pub fn new(store: &mut ParamStore, rng: &mut Prng, name: &str, dim: usize, hidden: usize) -> Self {
        let mlp = Mlp::new(
            store,
            rng,
            &format!("{name}.act_unit"),
            &[4 * dim, hidden, 1],
            Activation::LeakyRelu(0.01),
        );
        Self { mlp, dim }
    }

    /// Attend `query [m, dim]` over `seq [m, t*dim]` with `mask [m, t]`.
    /// Returns `(pooled [m, dim], attention [m, t])`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        query: Var,
        seq: Var,
        mask: Var,
        t: usize,
    ) -> (Var, Var) {
        let d = self.dim;
        let m = g.value(query).rows();
        debug_assert_eq!(g.value(query).cols(), d);
        debug_assert_eq!(g.value(seq).shape(), (m, t * d));
        debug_assert_eq!(g.value(mask).shape(), (m, t));

        let seq_flat = g.reshape(seq, m * t, d);
        let q_rep = g.repeat_rows(query, t);
        let diff = g.sub(q_rep, seq_flat);
        let prod = g.mul(q_rep, seq_flat);
        let feats = g.concat_cols(&[q_rep, seq_flat, diff, prod]);
        let scores_flat = self.mlp.forward(g, store, feats);
        let scores = g.reshape(scores_flat, m, t);
        let att = g.masked_softmax_rows(scores, mask);
        let pooled = g.seq_weighted_sum(seq, att, t, d);
        (pooled, att)
    }

    /// Trainable scalars.
    pub fn num_params(&self) -> usize {
        self.mlp.num_params()
    }
}

/// Scaled dot-product target attention with `heads` heads.
pub struct MultiHeadTargetAttention {
    wq: Vec<Linear>,
    wk: Vec<Linear>,
    wv: Vec<Linear>,
    wo: Linear,
    dim: usize,
    head_dim: usize,
}

impl MultiHeadTargetAttention {
    /// `dim` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Prng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(heads >= 1 && dim % heads == 0, "dim {dim} not divisible by heads {heads}");
        let head_dim = dim / heads;
        let mk = |store: &mut ParamStore, rng: &mut Prng, kind: &str, h: usize| {
            Linear::new(store, rng, &format!("{name}.{kind}{h}"), dim, head_dim, false)
        };
        let wq = (0..heads).map(|h| mk(store, rng, "wq", h)).collect();
        let wk = (0..heads).map(|h| mk(store, rng, "wk", h)).collect();
        let wv = (0..heads).map(|h| mk(store, rng, "wv", h)).collect();
        let wo = Linear::new(store, rng, &format!("{name}.wo"), dim, dim, true);
        Self { wq, wk, wv, wo, dim, head_dim }
    }

    /// Attend `query [m, dim]` over `seq [m, t*dim]` with `mask [m, t]`;
    /// returns `[m, dim]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        query: Var,
        seq: Var,
        mask: Var,
        t: usize,
    ) -> Var {
        let d = self.dim;
        let dh = self.head_dim;
        let m = g.value(query).rows();
        debug_assert_eq!(g.value(seq).shape(), (m, t * d));
        let seq_flat = g.reshape(seq, m * t, d);
        let scale = 1.0 / (dh as f32).sqrt();

        let mut heads = Vec::with_capacity(self.wq.len());
        for h in 0..self.wq.len() {
            let q = self.wq[h].forward(g, store, query); // [m, dh]
            let k = self.wk[h].forward(g, store, seq_flat); // [m*t, dh]
            let v = self.wv[h].forward(g, store, seq_flat); // [m*t, dh]
            let q_rep = g.repeat_rows(q, t); // [m*t, dh]
            let dots = g.row_dot(q_rep, k); // [m*t, 1]
            let scores0 = g.reshape(dots, m, t);
            let scores = g.scale(scores0, scale);
            let att = g.masked_softmax_rows(scores, mask);
            let v_seq = g.reshape(v, m, t * dh);
            heads.push(g.seq_weighted_sum(v_seq, att, t, dh)); // [m, dh]
        }
        let cat = g.concat_cols(&heads); // [m, dim]
        self.wo.forward(g, store, cat)
    }

    /// Trainable scalars.
    pub fn num_params(&self) -> usize {
        self.wq.iter().map(Linear::num_params).sum::<usize>()
            + self.wk.iter().map(Linear::num_params).sum::<usize>()
            + self.wv.iter().map(Linear::num_params).sum::<usize>()
            + self.wo.num_params()
    }
}

/// AutoInt's interacting layer: multi-head self-attention across feature
/// fields with a residual projection and ReLU.
pub struct SelfAttentionLayer {
    wq: Vec<Linear>,
    wk: Vec<Linear>,
    wv: Vec<Linear>,
    wres: Linear,
    head_dim: usize,
}

impl SelfAttentionLayer {
    /// `dim` is the per-field embedding width; the output field width is
    /// `heads * head_dim` (`= dim` when `head_dim = dim / heads`).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Prng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(heads >= 1 && dim % heads == 0, "dim {dim} not divisible by heads {heads}");
        let head_dim = dim / heads;
        let mk = |store: &mut ParamStore, rng: &mut Prng, kind: &str, h: usize| {
            Linear::new(store, rng, &format!("{name}.{kind}{h}"), dim, head_dim, false)
        };
        let wq = (0..heads).map(|h| mk(store, rng, "wq", h)).collect();
        let wk = (0..heads).map(|h| mk(store, rng, "wk", h)).collect();
        let wv = (0..heads).map(|h| mk(store, rng, "wv", h)).collect();
        let wres = Linear::new(store, rng, &format!("{name}.wres"), dim, dim, false);
        Self { wq, wk, wv, wres, head_dim }
    }

    /// One interacting layer over `fields` (each `[m, dim]`); returns the
    /// transformed fields (same shapes).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, fields: &[Var]) -> Vec<Var> {
        let n = fields.len();
        assert!(n >= 1, "SelfAttentionLayer: no fields");
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        // Per head, project every field once.
        let heads = self.wq.len();
        let mut out_fields: Vec<Vec<Var>> = vec![Vec::with_capacity(heads); n];
        for h in 0..heads {
            let qs: Vec<Var> = fields.iter().map(|&f| self.wq[h].forward(g, store, f)).collect();
            let ks: Vec<Var> = fields.iter().map(|&f| self.wk[h].forward(g, store, f)).collect();
            let vs: Vec<Var> = fields.iter().map(|&f| self.wv[h].forward(g, store, f)).collect();
            for i in 0..n {
                //

                let dots: Vec<Var> = (0..n).map(|j| g.row_dot(qs[i], ks[j])).collect();
                let scores0 = g.concat_cols(&dots); // [m, n]
                let scores = g.scale(scores0, scale);
                let att = g.softmax_rows(scores);
                // Weighted sum of value vectors.
                let mut acc: Option<Var> = None;
                for (j, &v) in vs.iter().enumerate() {
                    let w = g.slice_cols(att, j, 1); // [m,1]
                    let term = g.mul_col(v, w);
                    acc = Some(match acc {
                        Some(a) => g.add(a, term),
                        None => term,
                    });
                }
                out_fields[i].push(acc.expect("n >= 1"));
            }
        }
        // Concat heads, add residual projection, ReLU.
        out_fields
            .into_iter()
            .enumerate()
            .map(|(i, head_outs)| {
                let cat = g.concat_cols(&head_outs); // [m, heads*head_dim] = [m, dim]
                let res = self.wres.forward(g, store, fields[i]);
                let sum = g.add(cat, res);
                g.relu(sum)
            })
            .collect()
    }

    /// Trainable scalars.
    pub fn num_params(&self) -> usize {
        self.wq.iter().map(Linear::num_params).sum::<usize>()
            + self.wk.iter().map(Linear::num_params).sum::<usize>()
            + self.wv.iter().map(Linear::num_params).sum::<usize>()
            + self.wres.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn setup() -> (ParamStore, Prng) {
        (ParamStore::new(), Prng::seeded(42))
    }

    #[test]
    fn target_attention_shapes_and_mask() {
        let (mut store, mut rng) = setup();
        let att = TargetAttention::new(&mut store, &mut rng, "ta", 4, 8);
        let mut g = Graph::new();
        let q = g.input(rng.randn(3, 4, 1.0));
        let seq = g.input(rng.randn(3, 5 * 4, 1.0));
        // Third sample fully masked.
        let mut mask = Tensor::ones(3, 5);
        mask.row_mut(2).iter_mut().for_each(|m| *m = 0.0);
        let mask = g.input(mask);
        let (pooled, weights) = att.forward(&mut g, &store, q, seq, mask, 5);
        assert_eq!(g.value(pooled).shape(), (3, 4));
        assert_eq!(g.value(weights).shape(), (3, 5));
        // Fully masked row pools to zero.
        assert!(g.value(pooled).row(2).iter().all(|&v| v == 0.0));
        // Unmasked rows have weights summing to 1.
        let sum: f32 = g.value(weights).row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mhta_shapes() {
        let (mut store, mut rng) = setup();
        let att = MultiHeadTargetAttention::new(&mut store, &mut rng, "mh", 8, 2);
        let mut g = Graph::new();
        let q = g.input(rng.randn(2, 8, 1.0));
        let seq = g.input(rng.randn(2, 3 * 8, 1.0));
        let mask = g.input(Tensor::ones(2, 3));
        let out = att.forward(&mut g, &store, q, seq, mask, 3);
        assert_eq!(g.value(out).shape(), (2, 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn mhta_bad_heads_panics() {
        let (mut store, mut rng) = setup();
        MultiHeadTargetAttention::new(&mut store, &mut rng, "mh", 6, 4);
    }

    #[test]
    fn self_attention_preserves_field_shapes() {
        let (mut store, mut rng) = setup();
        let layer = SelfAttentionLayer::new(&mut store, &mut rng, "sa", 8, 2);
        let mut g = Graph::new();
        let fields: Vec<Var> = (0..3).map(|_| g.input(rng.randn(4, 8, 1.0))).collect();
        let out = layer.forward(&mut g, &store, &fields);
        assert_eq!(out.len(), 3);
        for &f in &out {
            assert_eq!(g.value(f).shape(), (4, 8));
        }
    }

    #[test]
    fn gradients_flow_through_attention() {
        let (mut store, mut rng) = setup();
        let att = TargetAttention::new(&mut store, &mut rng, "ta", 4, 8);
        let mut g = Graph::new();
        let q = g.input_with_grad(rng.randn(2, 4, 1.0));
        let seq = g.input_with_grad(rng.randn(2, 3 * 4, 1.0));
        let mask = g.input(Tensor::ones(2, 3));
        let (pooled, _) = att.forward(&mut g, &store, q, seq, mask, 3);
        let sq = g.square(pooled);
        let loss = g.mean_all(sq);
        g.backward(loss);
        store.accumulate_grads(&g);
        assert!(g.grad(q).unwrap().max_abs() > 0.0);
        assert!(g.grad(seq).unwrap().max_abs() > 0.0);
        // The activation-unit MLP received gradient too.
        let any_param_grad = store.ids().any(|id| store.grad(id).max_abs() > 0.0);
        assert!(any_param_grad);
    }
}
