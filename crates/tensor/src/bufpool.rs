//! Recycling buffer pool for tensor storage — the allocation-free hot path.
//!
//! Steady-state training and serving rebuild an identical-shaped [`crate::Graph`]
//! every step/request, so every node's value and gradient buffer used to be a
//! fresh heap allocation that was freed moments later. This module keeps those
//! buffers alive instead: released `Vec<f32>` buffers land in a global,
//! size-bucketed free list and the next tensor of a compatible size reuses
//! them, so after the first step the hot path stops touching the system
//! allocator entirely.
//!
//! Design rules:
//!
//! * **Power-of-two buckets.** Every pooled buffer has a power-of-two
//!   capacity (min [`MIN_BUCKET_LEN`] floats). A request of length `len` is
//!   served from the bucket `len.next_power_of_two()`, so a recycled buffer
//!   can serve any request up to its capacity. [`release`] only retains
//!   buffers whose capacity is an exact power of two — buffers that did not
//!   originate here (e.g. `Tensor::from_vec`) are simply freed.
//! * **Determinism.** Reuse can never change results: [`acquire_zeroed`]
//!   memsets the buffer (pinned by a proptest in `tests/bufpool.rs`) and
//!   [`acquire_scratch`] is only used by kernels that overwrite every element
//!   before reading it. Numeric behaviour is bitwise identical with the pool
//!   on or off (pinned in `tests/parallel_determinism.rs`).
//! * **Bounded retention.** Each bucket keeps at most [`MAX_PER_BUCKET`]
//!   buffers and oversized requests (> [`MAX_POOLED_LEN`]) bypass the pool,
//!   so retained memory is bounded and observable via [`retained_bytes`].
//! * **Escape hatch.** `BASM_POOL=0` (or [`set_pooling`]) disables recycling
//!   at runtime: acquires fall back to plain allocations and releases free —
//!   the exact pre-pool cold path, which `bench_hotpath` uses as its
//!   baseline.
//!
//! When the `obs` feature is on, the pool reports `pool.buffer_reuse` /
//! `pool.buffer_miss` counters (a hit serves from the free list; a miss
//! allocates), alongside the always-on [`stats`] used by tests.

use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest pooled capacity in `f32`s; shorter requests round up to this.
pub const MIN_BUCKET_LEN: usize = 64;

/// Largest pooled capacity in `f32`s (256 MiB); larger requests bypass the
/// pool entirely so a one-off giant tensor cannot pin memory forever.
pub const MAX_POOLED_LEN: usize = 1 << 26;

/// Maximum buffers retained per size bucket.
pub const MAX_PER_BUCKET: usize = 256;

const MIN_SHIFT: u32 = MIN_BUCKET_LEN.trailing_zeros();
const NUM_BUCKETS: usize = (MAX_POOLED_LEN.trailing_zeros() - MIN_SHIFT + 1) as usize;

/// Programmatic override: -1 = follow `BASM_POOL`, 0 = off, 1 = on.
static POOL_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// `BASM_POOL` resolution, computed once. Unset or anything other than
/// `0`/`false`/`off`/`no` means *on*.
static ENV_POOLING: OnceLock<bool> = OnceLock::new();

static REUSE: AtomicU64 = AtomicU64::new(0);
static MISS: AtomicU64 = AtomicU64::new(0);
static RETURNED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

static BUCKETS: OnceLock<Vec<Mutex<Vec<Vec<f32>>>>> = OnceLock::new();

fn buckets() -> &'static [Mutex<Vec<Vec<f32>>>] {
    BUCKETS.get_or_init(|| (0..NUM_BUCKETS).map(|_| Mutex::new(Vec::new())).collect())
}

fn env_pooling() -> bool {
    *ENV_POOLING.get_or_init(|| match std::env::var("BASM_POOL") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    })
}

/// Whether buffer recycling is active (`BASM_POOL` / [`set_pooling`]).
#[inline]
pub fn pooling_enabled() -> bool {
    match POOL_OVERRIDE.load(Ordering::Relaxed) {
        -1 => env_pooling(),
        0 => false,
        _ => true,
    }
}

/// Override the runtime toggle (`Some(on)`), or restore the `BASM_POOL`
/// default (`None`). Used by determinism tests and `bench_hotpath` to compare
/// pooled and cold paths within one process.
pub fn set_pooling(on: Option<bool>) {
    POOL_OVERRIDE.store(on.map_or(-1, |b| b as i8), Ordering::Relaxed);
}

/// The bucket capacity a request of `len` floats is served from.
#[inline]
pub fn bucket_len(len: usize) -> usize {
    len.max(MIN_BUCKET_LEN).next_power_of_two()
}

#[inline]
fn bucket_index(capacity: usize) -> usize {
    (capacity.trailing_zeros() - MIN_SHIFT) as usize
}

/// Pop a recycled buffer with capacity `>= len`, if the pool has one.
fn checkout(len: usize) -> Option<Vec<f32>> {
    if !pooling_enabled() || len == 0 || len > MAX_POOLED_LEN {
        return None;
    }
    let hit = {
        let mut bucket = buckets()[bucket_index(bucket_len(len))]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        bucket.pop()
    };
    match hit {
        Some(buf) => {
            REUSE.fetch_add(1, Ordering::Relaxed);
            basm_obs::counter_add("pool.buffer_reuse", 1);
            Some(buf)
        }
        None => {
            MISS.fetch_add(1, Ordering::Relaxed);
            basm_obs::counter_add("pool.buffer_miss", 1);
            None
        }
    }
}

/// A zeroed buffer of exactly `len` floats, recycled when possible. The
/// returned buffer always reads all-zero regardless of what the previous
/// owner wrote into it.
pub fn acquire_zeroed(len: usize) -> Vec<f32> {
    match checkout(len) {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => alloc_bucket_sized(len),
    }
}

/// A buffer of exactly `len` floats whose contents are **unspecified** (stale
/// data from its previous owner). Only for kernels that provably write every
/// element before any read — using it anywhere else breaks the pool-on/off
/// bitwise-identity contract (and the determinism tests will catch it).
pub fn acquire_scratch(len: usize) -> Vec<f32> {
    match checkout(len) {
        Some(mut buf) => {
            // Already-initialized stale floats; only the tail grown by
            // `resize` (if any) is written here.
            buf.resize(len, 0.0);
            buf
        }
        None => alloc_bucket_sized(len),
    }
}

/// Fresh allocation with the bucket's power-of-two capacity (so the buffer is
/// eligible for recycling later), or an exact-size allocation for requests
/// the pool refuses.
fn alloc_bucket_sized(len: usize) -> Vec<f32> {
    if !pooling_enabled() || len == 0 || len > MAX_POOLED_LEN {
        return vec![0.0; len];
    }
    let mut buf = Vec::with_capacity(bucket_len(len));
    buf.resize(len, 0.0);
    buf
}

/// Return a buffer to the pool. Only buffers with a power-of-two capacity in
/// `[MIN_BUCKET_LEN, MAX_POOLED_LEN]` are retained (anything else did not
/// come from the pool) and full buckets drop the excess.
pub fn release(buf: Vec<f32>) {
    let cap = buf.capacity();
    if !pooling_enabled()
        || !cap.is_power_of_two()
        || cap < MIN_BUCKET_LEN
        || cap > MAX_POOLED_LEN
    {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut bucket = buckets()[bucket_index(cap)].lock().unwrap_or_else(|p| p.into_inner());
    if bucket.len() >= MAX_PER_BUCKET {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    bucket.push(buf);
    RETURNED.fetch_add(1, Ordering::Relaxed);
}

/// Drop every retained buffer (tests / memory-pressure hook).
pub fn clear() {
    for bucket in buckets() {
        bucket.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// Total bytes currently retained on the free lists.
pub fn retained_bytes() -> usize {
    buckets()
        .iter()
        .map(|b| {
            b.lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<f32>())
                .sum::<usize>()
        })
        .sum()
}

/// Cumulative pool traffic since process start (always recorded, independent
/// of the `obs` feature, so tests can assert on reuse behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the free list.
    pub reuse: u64,
    /// Acquires that had to allocate.
    pub miss: u64,
    /// Releases retained on a free list.
    pub returned: u64,
    /// Releases dropped (foreign buffer, full bucket, or pooling off).
    pub dropped: u64,
}

/// Snapshot the cumulative [`PoolStats`].
pub fn stats() -> PoolStats {
    PoolStats {
        reuse: REUSE.load(Ordering::Relaxed),
        miss: MISS.load(Ordering::Relaxed),
        returned: RETURNED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pooling state is process-global; serialize tests that toggle it.
    pub(crate) fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn bucket_rounding_is_next_power_of_two_with_floor() {
        assert_eq!(bucket_len(1), MIN_BUCKET_LEN);
        assert_eq!(bucket_len(MIN_BUCKET_LEN), MIN_BUCKET_LEN);
        assert_eq!(bucket_len(MIN_BUCKET_LEN + 1), MIN_BUCKET_LEN * 2);
        assert_eq!(bucket_len(1000), 1024);
        assert_eq!(bucket_len(1024), 1024);
        assert_eq!(bucket_len(1025), 2048);
    }

    #[test]
    fn roundtrip_reuses_the_same_allocation() {
        let _guard = pool_lock();
        set_pooling(Some(true));
        clear();
        let buf = acquire_zeroed(100);
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.capacity(), 128);
        let ptr = buf.as_ptr();
        release(buf);
        let again = acquire_zeroed(120); // same bucket (128)
        assert_eq!(again.as_ptr(), ptr, "must reuse the retained buffer");
        assert!(again.iter().all(|&x| x == 0.0));
        release(again);
        set_pooling(None);
        clear();
    }

    #[test]
    fn foreign_and_oversized_buffers_are_not_retained() {
        let _guard = pool_lock();
        set_pooling(Some(true));
        clear();
        release(vec![1.0; 100]); // capacity 100: not a power of two
        release(Vec::new()); // capacity 0
        assert_eq!(retained_bytes(), 0);
        // Oversized requests bypass the pool entirely.
        let before = stats();
        let big = acquire_zeroed(MAX_POOLED_LEN + 1);
        release(big);
        let after = stats();
        assert_eq!(before.reuse, after.reuse);
        assert_eq!(before.miss, after.miss);
        assert_eq!(retained_bytes(), 0);
        set_pooling(None);
        clear();
    }

    #[test]
    fn disabled_pool_is_the_cold_path() {
        let _guard = pool_lock();
        set_pooling(Some(false));
        clear();
        let buf = acquire_zeroed(100);
        assert_eq!(buf.capacity(), 100, "cold path allocates exact size");
        release(buf);
        assert_eq!(retained_bytes(), 0, "cold path never retains");
        assert!(!pooling_enabled());
        set_pooling(None);
    }

    #[test]
    fn bucket_capacity_is_bounded() {
        let _guard = pool_lock();
        set_pooling(Some(true));
        clear();
        // Hold every buffer before releasing any, so the releases actually
        // have to fill the bucket rather than round-tripping one buffer.
        let held: Vec<_> = (0..MAX_PER_BUCKET + 10)
            .map(|_| acquire_zeroed(MIN_BUCKET_LEN))
            .collect();
        for buf in held {
            release(buf);
        }
        let retained = retained_bytes() / (MIN_BUCKET_LEN * std::mem::size_of::<f32>());
        assert!(retained <= MAX_PER_BUCKET, "retained {retained} buffers");
        set_pooling(None);
        clear();
    }
}
