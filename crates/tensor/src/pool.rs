//! Thread-pool policy for the parallel execution layer.
//!
//! This module owns the *decision* of how many threads a kernel may use and
//! the scoped-thread helpers that fan work out. Design rules, which every
//! parallel kernel in the workspace follows:
//!
//! * **Determinism.** A parallel kernel must produce results bitwise
//!   identical to its serial counterpart: work is partitioned into fixed,
//!   contiguous blocks of disjoint *output* rows, each output element's
//!   accumulation order is independent of the partition, and there are no
//!   atomics or cross-thread reductions. Changing `BASM_THREADS` therefore
//!   never changes results, only wall-clock.
//! * **Thresholds.** Small problems stay on the serial path; the cutover is
//!   a work estimate (`threads_for`) so thread spawn cost never dominates.
//! * **No oversubscription.** Work spawned from inside a pool worker (e.g. a
//!   matmul inside a data-parallel seed repeat) runs serially — the
//!   thread-local [`in_pool`] flag makes nested parallel regions degrade to
//!   their serial path instead of multiplying threads.
//!
//! Thread count resolution order: [`set_threads`] override (used by tests
//! and benchmarks) → `BASM_THREADS` env var → available parallelism.
//!
//! When the `obs` feature is enabled the helpers report pool occupancy to
//! `basm-obs`: `pool.par_regions` / `pool.serial_regions` count how many
//! regions actually fanned out versus fell back to the serial path, and
//! `pool.par_threads` sums the threads granted to parallel regions (so
//! `par_threads / par_regions` is the mean fan-out). Telemetry never changes
//! what is computed — see DESIGN.md §7.
//!
//! ```
//! use basm_tensor::pool;
//!
//! // Deterministic parallel map: output order always matches input order.
//! let items: Vec<u64> = (0..100).collect();
//! let squares = pool::par_map(&items, |&x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default minimum per-kernel work (≈ multiply-adds or scalar ops) before a
/// kernel considers going parallel.
pub const DEFAULT_MIN_WORK: usize = 64 * 1024;

/// Runtime override for the thread count; 0 = unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Runtime override for the parallelism threshold; `usize::MAX` = unset.
static MIN_WORK_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// `BASM_THREADS`/available-parallelism default, resolved once.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var("BASM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            })
    })
}

/// The number of threads parallel sections may use.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Override the thread count at runtime (`0` resets to the `BASM_THREADS` /
/// available-parallelism default). Used by determinism tests and benchmarks
/// to switch thread counts within one process.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Current minimum-work threshold for kernel parallelism.
pub fn min_work() -> usize {
    match MIN_WORK_OVERRIDE.load(Ordering::Relaxed) {
        usize::MAX => DEFAULT_MIN_WORK,
        n => n,
    }
}

/// Override the minimum-work threshold (`usize::MAX` resets). Tests set this
/// to 0 so tiny fixtures still exercise the parallel code paths.
pub fn set_min_work(n: usize) {
    MIN_WORK_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Whether the current thread is already a pool worker.
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Run `f` with the current thread marked as a pool worker, restoring the
/// previous state afterwards (also on panic).
fn enter_pool<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL.with(|flag| flag.set(self.0));
        }
    }
    let _guard = IN_POOL.with(|flag| Restore(flag.replace(true)));
    f()
}

/// How many threads a kernel over `units` independent output rows with total
/// `work` scalar operations should use. Returns 1 (serial) when nested in a
/// pool worker, when threads are capped at 1, or when `work` is under the
/// threshold.
///
/// ```
/// use basm_tensor::pool;
///
/// pool::set_threads(4);
/// // Tiny problems stay serial; big ones get up to the thread budget,
/// // capped by the number of independent output rows.
/// assert_eq!(pool::threads_for(1024, 16), 1);
/// assert_eq!(pool::threads_for(1024, 1 << 24), 4);
/// assert_eq!(pool::threads_for(2, 1 << 24), 2);
/// pool::set_threads(0); // back to the BASM_THREADS / core-count default
/// ```
pub fn threads_for(units: usize, work: usize) -> usize {
    if units <= 1 || in_pool() || work < min_work() {
        return 1;
    }
    num_threads().min(units)
}

/// Partition `out` — a row-major `rows × width` buffer — into `threads`
/// contiguous row blocks and run `f(first_row, block)` on each block, one
/// scoped thread per block (the first block runs on the calling thread).
///
/// Each invocation sees a disjoint `&mut` output slice, so data races are
/// impossible by construction; because the blocks are processed by the same
/// per-row code as the serial path, results are bitwise identical for any
/// thread count.
///
/// ```
/// use basm_tensor::pool;
///
/// // Fill a 6×2 row-major buffer with each row's index, on 3 threads.
/// let mut out = vec![0.0f32; 6 * 2];
/// pool::par_row_blocks(&mut out, 2, 3, |first_row, block| {
///     for (i, row) in block.chunks_mut(2).enumerate() {
///         row.fill((first_row + i) as f32);
///     }
/// });
/// assert_eq!(out[2 * 5], 5.0);
/// ```
pub fn par_row_blocks<F>(out: &mut [f32], width: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(width > 0 && out.len() % width == 0);
    let rows = out.len() / width;
    if threads <= 1 || rows <= 1 {
        basm_obs::counter_add("pool.serial_regions", 1);
        f(0, out);
        return;
    }
    let threads = threads.min(rows);
    basm_obs::counter_add("pool.par_regions", 1);
    basm_obs::counter_add("pool.par_threads", threads as u64);
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut blocks = out.chunks_mut(chunk_rows * width);
        let first = blocks.next().expect("non-empty output");
        for (bi, block) in blocks.enumerate() {
            let first_row = (bi + 1) * chunk_rows;
            scope.spawn(move || {
                enter_pool(|| f(first_row, block));
                // Flush inside the closure: `scope` may return before a
                // worker's TLS destructors (the merge-on-exit backstop) run,
                // so an eager flush makes this region's telemetry visible to
                // `basm_obs::report()` as soon as the region completes.
                basm_obs::flush();
            });
        }
        enter_pool(|| f(0, first));
    });
}

/// Map `f` over `items` with up to [`num_threads`] scoped threads, preserving
/// input order in the output. Each worker owns a contiguous chunk of items,
/// so ordering (and with deterministic `f`, results) match the serial path
/// exactly. Falls back to a plain serial map when nested in a pool worker or
/// when only one thread is available.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = if in_pool() { 1 } else { num_threads().min(n.max(1)) };
    if threads <= 1 || n <= 1 {
        basm_obs::counter_add("pool.serial_regions", 1);
        return items.iter().map(|item| f(item)).collect();
    }
    basm_obs::counter_add("pool.par_regions", 1);
    basm_obs::counter_add("pool.par_threads", threads as u64);
    let mut slots: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let run_chunk = move |chunk_items: &[T], chunk_slots: &mut [Option<U>]| {
            enter_pool(|| {
                for (slot, item) in chunk_slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        };
        let mut pairs = items.chunks(chunk).zip(slots.chunks_mut(chunk));
        let first = pairs.next().expect("non-empty input");
        for (chunk_items, chunk_slots) in pairs {
            scope.spawn(move || {
                run_chunk(chunk_items, chunk_slots);
                // See par_row_blocks: merge before the scope returns.
                basm_obs::flush();
            });
        }
        run_chunk(first.0, first.1);
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map: worker left a slot empty"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Settings are process-global; serialize the tests that mutate them.
    fn with_settings<R>(threads: usize, min_work: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        set_threads(threads);
        set_min_work(min_work);
        let out = f();
        set_threads(0);
        set_min_work(usize::MAX);
        out
    }

    #[test]
    fn threads_for_respects_threshold_and_units() {
        with_settings(4, DEFAULT_MIN_WORK, || {
            assert_eq!(threads_for(100, DEFAULT_MIN_WORK - 1), 1);
            assert_eq!(threads_for(100, DEFAULT_MIN_WORK), 4);
            assert_eq!(threads_for(2, usize::MAX), 2);
            assert_eq!(threads_for(1, usize::MAX), 1);
        });
    }

    #[test]
    fn par_row_blocks_covers_every_row_once() {
        with_settings(3, 0, || {
            let rows = 10;
            let width = 4;
            let mut out = vec![0.0f32; rows * width];
            par_row_blocks(&mut out, width, 3, |first_row, block| {
                for (r, row) in block.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as f32;
                    }
                }
            });
            for r in 0..rows {
                assert!(out[r * width..(r + 1) * width].iter().all(|&v| v == r as f32));
            }
        });
    }

    #[test]
    fn par_map_preserves_order() {
        with_settings(4, 0, || {
            let items: Vec<usize> = (0..23).collect();
            let out = par_map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        });
    }

    #[test]
    fn nested_parallel_sections_degrade_to_serial() {
        with_settings(4, 0, || {
            let items: Vec<usize> = (0..4).collect();
            let nested = par_map(&items, |_| {
                // Inside a worker the pool must refuse more threads.
                threads_for(1000, usize::MAX)
            });
            assert!(nested.iter().all(|&t| t == 1));
            // And back outside, parallelism is available again.
            assert_eq!(threads_for(1000, usize::MAX), 4);
        });
    }
}
