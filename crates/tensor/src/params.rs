//! Named dense parameter storage shared by all models.
//!
//! A [`ParamStore`] owns every trainable dense tensor of a model (MLP weights,
//! attention projections, BN affine parameters, meta-network weights...).
//! Per batch, a [`Graph`] copies the needed parameters
//! onto the tape via [`Graph::param`](crate::graph::Graph::param); after
//! `backward`, [`ParamStore::accumulate_grads`] pulls the tape gradients back,
//! and an [`Optimizer`](crate::optim::Optimizer) applies the update.
//!
//! Sparse parameters (embedding tables) intentionally live elsewhere — see
//! [`crate::nn::embedding`].

use crate::graph::Graph;
use crate::quant::{self, QuantMatrix};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Stable identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

struct Entry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Registry of named dense parameters with accumulated gradients.
///
/// When the int8 serve path is enabled (`BASM_QUANT=int8`, see
/// [`crate::quant`]), the store can additionally carry a per-parameter
/// [`QuantMatrix`] cache prepared by [`ParamStore::prepare_quant`]. The cache
/// is derived state: any mutation through [`ParamStore::value_mut`]
/// invalidates that parameter's quantized copy so a stale scorer can never be
/// served after an online update.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<Entry>,
    by_name: HashMap<String, ParamId>,
    quant: HashMap<usize, QuantMatrix>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter. Names must be unique — scoped names like
    /// `"tower.fc1.weight"` are the convention.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate parameter name {name:?}"
        );
        let grad = Tensor::zeros(value.rows(), value.cols());
        let id = ParamId(self.entries.len());
        self.by_name.insert(name.clone(), id);
        self.entries.push(Entry { name, value, grad });
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Look up a parameter id by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value (used by optimizers and tests). Drops any cached
    /// quantized copy of this parameter — it would be stale after the write.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.quant.remove(&id.0);
        &mut self.entries[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zero every gradient accumulator (start of a step).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Pull gradients of parameter nodes out of a graph after `backward`,
    /// adding them into the store's accumulators.
    pub fn accumulate_grads(&mut self, g: &Graph) {
        for (&node, &pid) in &g.param_of_node {
            if let Some(grad) = &g.nodes[node].grad {
                self.entries[pid.0].grad.add_assign(grad);
            }
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f64 {
        self.entries.iter().map(|e| e.grad.sq_norm()).sum::<f64>().sqrt()
    }

    /// Scale every gradient so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = (max_norm / norm) as f32;
            for e in &mut self.entries {
                e.grad.scale_inplace(scale);
            }
        }
        norm
    }

    /// Estimated memory footprint in bytes: values + gradients.
    pub fn memory_bytes(&self) -> usize {
        self.num_scalars() * std::mem::size_of::<f32>() * 2
            + self.quant.values().map(QuantMatrix::memory_bytes).sum::<usize>()
    }

    /// Quantize every weight matrix (rows ≥ 2; `[1, n]` biases and scalars are
    /// left in f32) into the int8 cache. No-op unless `BASM_QUANT` enables the
    /// quantized serve path. Returns the number of parameters quantized.
    ///
    /// Call sites: checkpoint attach and serving-pipeline construction —
    /// anywhere a freshly loaded model transitions to read-mostly scoring.
    pub fn prepare_quant(&mut self) -> usize {
        if !quant::quant_enabled() {
            return 0;
        }
        for (idx, e) in self.entries.iter().enumerate() {
            if e.value.rows() >= 2 && !self.quant.contains_key(&idx) {
                self.quant.insert(idx, QuantMatrix::quantize(&e.value));
            }
        }
        self.quant.len()
    }

    /// Drop every cached quantized copy (e.g. before a training phase).
    pub fn clear_quant(&mut self) {
        self.quant.clear();
    }

    /// The cached int8 copy of a parameter, if the quantized serve path is
    /// enabled and [`ParamStore::prepare_quant`] has run since the last
    /// mutation of this parameter.
    pub fn quant(&self, id: ParamId) -> Option<&QuantMatrix> {
        if !quant::quant_enabled() {
            return None;
        }
        self.quant.get(&id.0)
    }

    /// Number of parameters currently held in the int8 cache.
    pub fn num_quantized(&self) -> usize {
        self.quant.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::ones(2, 3));
        assert_eq!(s.id_of("w"), Some(id));
        assert_eq!(s.value(id).shape(), (2, 3));
        assert_eq!(s.num_scalars(), 6);
        assert_eq!(s.name(id), "w");
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(1, 1));
        s.add("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn grads_flow_from_graph() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::scalar(3.0));
        let mut g = Graph::new();
        let wv = g.param(&s, w);
        let sq = g.square(wv);
        let loss = g.sum_all(sq);
        g.backward(loss);
        s.accumulate_grads(&g);
        assert!((s.grad(w).item() - 6.0).abs() < 1e-5);
        s.zero_grads();
        assert_eq!(s.grad(w).item(), 0.0);
    }

    #[test]
    fn param_node_reused_within_graph() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let a = g.param(&s, w);
        let b = g.param(&s, w);
        assert_eq!(a, b);
        // Two consumers of the same node still accumulate correctly.
        let p = g.mul(a, b); // w^2
        let loss = g.sum_all(p);
        g.backward(loss);
        s.accumulate_grads(&g);
        assert!((s.grad(w).item() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn quant_cache_prepared_and_invalidated() {
        let _guard = crate::quant::tests_force_quant();
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::ones(3, 2));
        let b = s.add("b", Tensor::ones(1, 2));
        assert_eq!(s.prepare_quant(), 1, "only the rows>=2 matrix quantizes");
        assert!(s.quant(w).is_some());
        assert!(s.quant(b).is_none(), "biases stay f32");
        // Mutation drops the cached copy; re-preparing restores it.
        s.value_mut(w).data_mut()[0] = 7.0;
        assert!(s.quant(w).is_none(), "value_mut must invalidate");
        assert_eq!(s.prepare_quant(), 1);
        assert!(s.quant(w).is_some());
        s.clear_quant();
        assert_eq!(s.num_quantized(), 0);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::zeros(1, 2));
        s.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
    }
}
