//! Matrix-multiplication kernels.
//!
//! Three variants cover forward and both backward passes of a dense layer
//! without materializing explicit transposes:
//!
//! * `matmul`        — `C += A  · B`
//! * `matmul_at_b`   — `C += Aᵀ · B` (weight gradients)
//! * `matmul_a_bt`   — `C += A  · Bᵀ` (input gradients)
//!
//! All kernels use the cache-friendly `i-k-j` loop order so the innermost loop
//! streams contiguous rows of `B` and `C`. Those inner loops run through the
//! explicit lane-parallel kernels in [`crate::simd`] (`BASM_SIMD=0` forces
//! the scalar path); lanes map to distinct output elements, so every element
//! accumulates in the unchanged scalar order and SIMD-vs-scalar is bitwise
//! identical per mode.
//! When the `B` operand is too large to sit in cache (see `PACK_MIN_B`),
//! `matmul`/`matmul_at_b` switch to a packed, cache-blocked kernel: the
//! `KC x NC` panel of `B` currently in play is copied once into a pooled,
//! contiguous, block-major scratch buffer and reused across all output rows.
//! Blocking runs `k` in ascending `KC` chunks and positions ascend within
//! each chunk, so every output element still accumulates its `k` products in
//! exactly the same `p`-ascending order as the naive loop — the packed and
//! naive kernels are **bitwise identical** (pinned in
//! `tests/parallel_determinism.rs`).
//!
//! The `C = A · B` entry points allocate `C` as unzeroed pooled scratch and
//! let the kernels initialize it: the first `k` term of each element is
//! written as `0.0 + a·b` with `=` instead of `+=`. That is the identical
//! float-op sequence as accumulating into a zeroed buffer (the compiler may
//! not fold `0.0 + x` — it would turn `-0.0` into `+0.0`), so bits don't
//! move, but the whole-output memset is gone. [`matmul_acc`] keeps pure
//! `+=` semantics for callers accumulating into existing values.
//!
//! Above a work threshold (see [`crate::pool::threads_for`]) each kernel
//! row-blocks its *output* across scoped threads. The per-row code is shared
//! between the serial and parallel paths and every output element accumulates
//! in the same `p`-ascending order regardless of the partition, so results
//! are bitwise identical for any `BASM_THREADS` value.
//!
//! The default kernels are branch-free: they do not skip zero entries, so
//! their flop count is shape-determined (what the Table VI efficiency
//! accounting assumes) and serial/parallel variants do identical work. For
//! genuinely sparse left operands (e.g. one-hot rows) use
//! [`matmul_acc_sparse`], which keeps the zero-skip and is explicit about it.

use crate::bufpool;
use crate::pool;
use crate::simd;
use crate::tensor::Tensor;

/// Rows of `B` per packed panel (`k`-direction block). `KC x NC` floats is
/// 32 KiB — comfortably inside L1d on anything this runs on.
const KC: usize = 128;

/// Columns of `B` per packed panel (`n`-direction block).
const NC: usize = 64;

/// Minimum `B` element count before the packed kernel pays for its packing
/// traffic: below this, `B` fits in cache and the plain `i-k-j` loop already
/// streams it. 32 Ki floats = 128 KiB.
const PACK_MIN_B: usize = 1 << 15;

#[inline]
fn use_packed(m: usize, k: usize, n: usize) -> bool {
    // Packing is amortized across output rows; a couple of rows can't pay
    // for it. Both branches are bitwise identical, so this threshold is a
    // pure performance choice.
    m >= 4 && k * n >= PACK_MIN_B
}

/// `C = A · B` where `A: [m,k]`, `B: [k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul: inner dims {k} vs {k2} (A {m}x{k}, B {k2}x{n})");
    // Pooled scratch: the INIT kernels write every element (first `k` term
    // with `=`), so the whole-tensor zeroing memset is elided. The written
    // value `0.0 + a·b` replays exactly the accumulate-from-zero sequence —
    // same bits as zeroing first (the compiler cannot fold `0.0 + x` without
    // fast-math: it would flip `-0.0` to `+0.0`).
    let mut c = Tensor::scratch_pooled(m, n);
    let ad = a.data();
    let bd = b.data();
    let _span = basm_obs::span!("tensor.matmul", rows = m, inner = k, cols = n);
    let threads = pool::threads_for(m, m * k * n);
    if use_packed(m, k, n) {
        pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
            matmul_rows_packed::<true>(ad, bd, block, i0, k, n);
        });
    } else {
        pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
            matmul_rows::<true>(ad, bd, block, i0, k, n);
        });
    }
    c
}

/// Accumulate `A[i0.., :] · B` into `c_rows` (rows `i0..` of C). With
/// `INIT`, the `p == 0` term is written with `=` (as `0.0 + a·b`) instead of
/// `+=` — bit-for-bit the accumulate-from-zero sequence, minus the memset.
fn matmul_rows<const INIT: bool>(
    ad: &[f32],
    bd: &[f32],
    c_rows: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
) {
    if INIT && k == 0 {
        c_rows.fill(0.0);
        return;
    }
    for (ri, crow) in c_rows.chunks_mut(n).enumerate() {
        let i = i0 + ri;
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &aip) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            // Lane-parallel over output columns; each element still sees the
            // scalar `c + a*b` sequence (see `simd` module docs).
            if INIT && p == 0 {
                simd::axpy_init(crow, brow, aip);
            } else {
                simd::axpy(crow, brow, aip);
            }
        }
    }
}

/// Cache-blocked sibling of [`matmul_rows`]: packs each `KC x NC` panel of
/// `B` into a pooled contiguous scratch buffer and accumulates panel by
/// panel. `kb` blocks ascend and `p` ascends within each block, so every
/// output element receives its `k` products in the same order as
/// [`matmul_rows`] — bitwise identical results, better locality.
fn matmul_rows_packed<const INIT: bool>(
    ad: &[f32],
    bd: &[f32],
    c_rows: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
) {
    if INIT && k == 0 {
        c_rows.fill(0.0);
        return;
    }
    let rows = c_rows.len() / n;
    let mut pack = bufpool::acquire_scratch(KC * NC);
    for jb in (0..n).step_by(NC) {
        let jw = NC.min(n - jb);
        for kb in (0..k).step_by(KC) {
            let kw = KC.min(k - kb);
            // Pack B[kb..kb+kw, jb..jb+jw] row-major; every slot written.
            for p in 0..kw {
                let src = (kb + p) * n + jb;
                pack[p * jw..(p + 1) * jw].copy_from_slice(&bd[src..src + jw]);
            }
            for ri in 0..rows {
                let arow = &ad[(i0 + ri) * k + kb..(i0 + ri) * k + kb + kw];
                let crow = &mut c_rows[ri * n + jb..ri * n + jb + jw];
                for (p, &aip) in arow.iter().enumerate() {
                    let brow = &pack[p * jw..(p + 1) * jw];
                    // Each element's first `k` term overall sits at
                    // (kb == 0, p == 0) of its `jb` panel.
                    if INIT && kb == 0 && p == 0 {
                        simd::axpy_init(crow, brow, aip);
                    } else {
                        simd::axpy(crow, brow, aip);
                    }
                }
            }
        }
    }
    bufpool::release(pack);
}

/// `C += A · B` into an existing output buffer. Branch-free: every
/// `a[i][p]` participates, so the flop count is exactly `2·m·k·n`
/// independent of the data.
pub fn matmul_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    debug_assert_eq!(c.shape(), (m, n));
    let _span = basm_obs::span!("tensor.matmul", rows = m, inner = k, cols = n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    if use_packed(m, k, n) {
        pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
            matmul_rows_packed::<false>(ad, bd, block, i0, k, n);
        });
    } else {
        pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
            matmul_rows::<false>(ad, bd, block, i0, k, n);
        });
    }
}

/// `C += A · B`, skipping zero entries of `A`.
///
/// Bitwise-equal results to [`matmul_acc`] except for signed-zero outputs,
/// but the flop count becomes data-dependent — use only where the left
/// operand is known sparse (one-hot / heavily masked rows) and the caller
/// accepts data-dependent timing.
pub fn matmul_acc_sparse(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    debug_assert_eq!(c.shape(), (m, n));
    let _span = basm_obs::span!("tensor.matmul_sparse", rows = m, inner = k, cols = n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        for (ri, crow) in block.chunks_mut(n).enumerate() {
            let i = i0 + ri;
            let arow = &ad[i * k..(i + 1) * k];
            for (p, &aip) in arow.iter().enumerate() {
                if aip == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                simd::axpy(crow, brow, aip);
            }
        }
    });
}

/// `C = Aᵀ · B` where `A: [k,m]`, `B: [k,n]`, result `[m,n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_at_b: outer dims {k} vs {k2}");
    let _span = basm_obs::span!("tensor.matmul_at_b", rows = m, inner = k, cols = n);
    // Pooled scratch, initialized by the kernels' first `k` term (see
    // [`matmul`] for the bitwise argument).
    let mut c = Tensor::scratch_pooled(m, n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    if use_packed(m, k, n) {
        // Transpose A once into pooled scratch (row-major [m,k]) and reuse
        // the packed kernel. Per output element that is the same
        // `p`-ascending accumulation as the p-outer loop below.
        let mut at = bufpool::acquire_scratch(k * m);
        for (p, arow) in ad.chunks_exact(m).enumerate() {
            for (i, &av) in arow.iter().enumerate() {
                at[i * k + p] = av;
            }
        }
        let atr = &at;
        pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
            matmul_rows_packed::<true>(atr, bd, block, i0, k, n);
        });
        bufpool::release(at);
        return c;
    }
    // Each block owns output rows [i0, i0+rows) — columns i0.. of A. The
    // p-outer loop keeps B-row streaming and preserves the accumulation
    // order of the serial (single-block) pass for every output element;
    // `p == 0` initializes.
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        let rows = block.len() / n;
        if k == 0 {
            block.fill(0.0);
        }
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for (ri, &av) in arow[i0..i0 + rows].iter().enumerate() {
                let crow = &mut block[ri * n..(ri + 1) * n];
                if p == 0 {
                    simd::axpy_init(crow, brow, av);
                } else {
                    simd::axpy(crow, brow, av);
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` where `A: [m,k]`, `B: [n,k]`, result `[m,n]`.
///
/// Scalar path: `B`'s rows are already contiguous, so there is nothing to
/// pack; the `j` loop is blocked in `NC`-row chunks of `B` so a panel stays
/// in cache across every output row, and each output element is a single
/// write of a self-contained dot product. With SIMD active and a
/// packing-worthy shape, `B` is transposed once into scratch and the
/// lane-parallel packed kernel runs instead — same accumulation order per
/// element, same bits.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_a_bt: inner dims {k} vs {k2}");
    let _span = basm_obs::span!("tensor.matmul_a_bt", rows = m, inner = k, cols = n);
    let mut c = Tensor::scratch_pooled(m, n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    if simd::active_lanes() > 1 && use_packed(m, k, n) {
        // The dot-product loop below accumulates *within* one element, which
        // lanes must never split. Instead transpose `B` once into pooled
        // scratch (row-major `[k,n]`) and reuse the lane-parallel packed
        // kernel: per output element `acc = 0.0; acc += a·b; ...` and
        // `c = 0.0 + a·b; c += a·b; ...` are the identical float-op
        // sequence in the identical `p`-ascending order, so this branch is
        // bitwise equal to the dot loop (pinned in
        // `tests/simd_equivalence.rs`).
        let mut bt = bufpool::acquire_scratch(k * n);
        for (j, brow) in bd.chunks_exact(k).enumerate() {
            for (p, &bv) in brow.iter().enumerate() {
                bt[p * n + j] = bv;
            }
        }
        let btr = &bt;
        pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
            matmul_rows_packed::<true>(ad, btr, block, i0, k, n);
        });
        bufpool::release(bt);
        return c;
    }
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        let rows = block.len() / n;
        for jb in (0..n).step_by(NC) {
            let jw = NC.min(n - jb);
            for ri in 0..rows {
                let arow = &ad[(i0 + ri) * k..(i0 + ri + 1) * k];
                let crow = &mut block[ri * n + jb..ri * n + jb + jw];
                for (jo, cv) in crow.iter_mut().enumerate() {
                    let brow = &bd[(jb + jo) * k..(jb + jo + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    *cv = acc;
                }
            }
        }
    });
    c
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        Tensor::from_fn(m, n, |i, j| (0..k).map(|p| a.get(i, p) * b.get(p, j)).sum())
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seeded(1);
        let a = rng.randn(7, 5, 1.0);
        let b = rng.randn(5, 9, 1.0);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn at_b_matches_transpose() {
        let mut rng = Prng::seeded(2);
        let a = rng.randn(6, 4, 1.0);
        let b = rng.randn(6, 3, 1.0);
        assert_close(&matmul_at_b(&a, &b), &matmul(&a.transposed(), &b), 1e-4);
    }

    #[test]
    fn a_bt_matches_transpose() {
        let mut rng = Prng::seeded(3);
        let a = rng.randn(6, 4, 1.0);
        let b = rng.randn(5, 4, 1.0);
        assert_close(&matmul_a_bt(&a, &b), &matmul(&a, &b.transposed()), 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = Prng::seeded(4);
        let a = rng.randn(4, 4, 1.0);
        let eye = Tensor::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    fn sparse_entry_point_matches_dense_kernel() {
        let mut rng = Prng::seeded(5);
        // One-hot-ish left operand: mostly zeros.
        let a = Tensor::from_fn(8, 16, |i, j| if j == i * 2 { 1.5 } else { 0.0 });
        let b = rng.randn(16, 6, 1.0);
        let mut dense = Tensor::zeros(8, 6);
        let mut sparse = Tensor::zeros(8, 6);
        matmul_acc(&a, &b, &mut dense);
        matmul_acc_sparse(&a, &b, &mut sparse);
        assert_close(&dense, &sparse, 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn shape_mismatch_panics() {
        matmul(&Tensor::zeros(2, 3), &Tensor::zeros(4, 2));
    }
}
