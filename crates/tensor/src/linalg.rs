//! Matrix-multiplication kernels.
//!
//! Three variants cover forward and both backward passes of a dense layer
//! without materializing explicit transposes:
//!
//! * `matmul`        — `C += A  · B`
//! * `matmul_at_b`   — `C += Aᵀ · B` (weight gradients)
//! * `matmul_a_bt`   — `C += A  · Bᵀ` (input gradients)
//!
//! All kernels use the cache-friendly `i-k-j` loop order so the innermost loop
//! streams contiguous rows of `B` and `C`, which the compiler auto-vectorizes.

use crate::tensor::Tensor;

/// `C = A · B` where `A: [m,k]`, `B: [k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul: inner dims {k} vs {k2} (A {m}x{k}, B {k2}x{n})");
    let mut c = Tensor::zeros(m, n);
    matmul_acc(a, b, &mut c);
    c
}

/// `C += A · B` into an existing output buffer.
pub fn matmul_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    debug_assert_eq!(c.shape(), (m, n));
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cd[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    }
}

/// `C = Aᵀ · B` where `A: [k,m]`, `B: [k,n]`, result `[m,n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_at_b: outer dims {k} vs {k2}");
    let mut c = Tensor::zeros(m, n);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    // For each shared row p of A and B, rank-1 update C += A[p,:]ᵀ · B[p,:].
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` where `A: [m,k]`, `B: [n,k]`, result `[m,n]`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_a_bt: inner dims {k} vs {k2}");
    let mut c = Tensor::zeros(m, n);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cd[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
    c
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        Tensor::from_fn(m, n, |i, j| (0..k).map(|p| a.get(i, p) * b.get(p, j)).sum())
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seeded(1);
        let a = rng.randn(7, 5, 1.0);
        let b = rng.randn(5, 9, 1.0);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn at_b_matches_transpose() {
        let mut rng = Prng::seeded(2);
        let a = rng.randn(6, 4, 1.0);
        let b = rng.randn(6, 3, 1.0);
        assert_close(&matmul_at_b(&a, &b), &matmul(&a.transposed(), &b), 1e-4);
    }

    #[test]
    fn a_bt_matches_transpose() {
        let mut rng = Prng::seeded(3);
        let a = rng.randn(6, 4, 1.0);
        let b = rng.randn(5, 4, 1.0);
        assert_close(&matmul_a_bt(&a, &b), &matmul(&a, &b.transposed()), 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = Prng::seeded(4);
        let a = rng.randn(4, 4, 1.0);
        let eye = Tensor::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn shape_mismatch_panics() {
        matmul(&Tensor::zeros(2, 3), &Tensor::zeros(4, 2));
    }
}
