//! Matrix-multiplication kernels.
//!
//! Three variants cover forward and both backward passes of a dense layer
//! without materializing explicit transposes:
//!
//! * `matmul`        — `C += A  · B`
//! * `matmul_at_b`   — `C += Aᵀ · B` (weight gradients)
//! * `matmul_a_bt`   — `C += A  · Bᵀ` (input gradients)
//!
//! All kernels use the cache-friendly `i-k-j` loop order so the innermost loop
//! streams contiguous rows of `B` and `C`, which the compiler auto-vectorizes.
//!
//! Above a work threshold (see [`crate::pool::threads_for`]) each kernel
//! row-blocks its *output* across scoped threads. The per-row code is shared
//! between the serial and parallel paths and every output element accumulates
//! in the same `p`-ascending order regardless of the partition, so results
//! are bitwise identical for any `BASM_THREADS` value.
//!
//! The default kernels are branch-free: they do not skip zero entries, so
//! their flop count is shape-determined (what the Table VI efficiency
//! accounting assumes) and serial/parallel variants do identical work. For
//! genuinely sparse left operands (e.g. one-hot rows) use
//! [`matmul_acc_sparse`], which keeps the zero-skip and is explicit about it.

use crate::pool;
use crate::tensor::Tensor;

/// `C = A · B` where `A: [m,k]`, `B: [k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul: inner dims {k} vs {k2} (A {m}x{k}, B {k2}x{n})");
    let mut c = Tensor::zeros(m, n);
    matmul_acc(a, b, &mut c);
    c
}

/// Accumulate `A[i0.., :] · B` into `c_rows` (rows `i0..` of C).
fn matmul_rows(ad: &[f32], bd: &[f32], c_rows: &mut [f32], i0: usize, k: usize, n: usize) {
    for (ri, crow) in c_rows.chunks_mut(n).enumerate() {
        let i = i0 + ri;
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &aip) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aip * bv;
            }
        }
    }
}

/// `C += A · B` into an existing output buffer. Branch-free: every
/// `a[i][p]` participates, so the flop count is exactly `2·m·k·n`
/// independent of the data.
pub fn matmul_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    debug_assert_eq!(c.shape(), (m, n));
    let _span = basm_obs::span!("tensor.matmul", rows = m, inner = k, cols = n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        matmul_rows(ad, bd, block, i0, k, n);
    });
}

/// `C += A · B`, skipping zero entries of `A`.
///
/// Bitwise-equal results to [`matmul_acc`] except for signed-zero outputs,
/// but the flop count becomes data-dependent — use only where the left
/// operand is known sparse (one-hot / heavily masked rows) and the caller
/// accepts data-dependent timing.
pub fn matmul_acc_sparse(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    debug_assert_eq!(c.shape(), (m, n));
    let _span = basm_obs::span!("tensor.matmul_sparse", rows = m, inner = k, cols = n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        for (ri, crow) in block.chunks_mut(n).enumerate() {
            let i = i0 + ri;
            let arow = &ad[i * k..(i + 1) * k];
            for (p, &aip) in arow.iter().enumerate() {
                if aip == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aip * bv;
                }
            }
        }
    });
}

/// `C = Aᵀ · B` where `A: [k,m]`, `B: [k,n]`, result `[m,n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_at_b: outer dims {k} vs {k2}");
    let _span = basm_obs::span!("tensor.matmul_at_b", rows = m, inner = k, cols = n);
    let mut c = Tensor::zeros(m, n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    // Each block owns output rows [i0, i0+rows) — columns i0.. of A. The
    // p-outer loop keeps B-row streaming and preserves the accumulation
    // order of the serial (single-block) pass for every output element.
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        let rows = block.len() / n;
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for (ri, &av) in arow[i0..i0 + rows].iter().enumerate() {
                let crow = &mut block[ri * n..(ri + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += av * bv;
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` where `A: [m,k]`, `B: [n,k]`, result `[m,n]`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_a_bt: inner dims {k} vs {k2}");
    let _span = basm_obs::span!("tensor.matmul_a_bt", rows = m, inner = k, cols = n);
    let mut c = Tensor::zeros(m, n);
    let ad = a.data();
    let bd = b.data();
    let threads = pool::threads_for(m, m * k * n);
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        for (ri, crow) in block.chunks_mut(n).enumerate() {
            let arow = &ad[(i0 + ri) * k..(i0 + ri + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    });
    c
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        Tensor::from_fn(m, n, |i, j| (0..k).map(|p| a.get(i, p) * b.get(p, j)).sum())
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seeded(1);
        let a = rng.randn(7, 5, 1.0);
        let b = rng.randn(5, 9, 1.0);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn at_b_matches_transpose() {
        let mut rng = Prng::seeded(2);
        let a = rng.randn(6, 4, 1.0);
        let b = rng.randn(6, 3, 1.0);
        assert_close(&matmul_at_b(&a, &b), &matmul(&a.transposed(), &b), 1e-4);
    }

    #[test]
    fn a_bt_matches_transpose() {
        let mut rng = Prng::seeded(3);
        let a = rng.randn(6, 4, 1.0);
        let b = rng.randn(5, 4, 1.0);
        assert_close(&matmul_a_bt(&a, &b), &matmul(&a, &b.transposed()), 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = Prng::seeded(4);
        let a = rng.randn(4, 4, 1.0);
        let eye = Tensor::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    fn sparse_entry_point_matches_dense_kernel() {
        let mut rng = Prng::seeded(5);
        // One-hot-ish left operand: mostly zeros.
        let a = Tensor::from_fn(8, 16, |i, j| if j == i * 2 { 1.5 } else { 0.0 });
        let b = rng.randn(16, 6, 1.0);
        let mut dense = Tensor::zeros(8, 6);
        let mut sparse = Tensor::zeros(8, 6);
        matmul_acc(&a, &b, &mut dense);
        matmul_acc_sparse(&a, &b, &mut sparse);
        assert_close(&dense, &sparse, 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn shape_mismatch_panics() {
        matmul(&Tensor::zeros(2, 3), &Tensor::zeros(4, 2));
    }
}
