//! Dense, row-major, rank-2 `f32` tensor.
//!
//! Everything in this reproduction is expressible as `[rows, cols]` matrices:
//! a batch of feature vectors is `[batch, features]`, a batch of behavior
//! sequences is `[batch, seq_len * dim]` (with explicit fused ops that know the
//! `(seq_len, dim)` split), a scalar loss is `[1, 1]`. Keeping the tensor rank
//! fixed at 2 keeps every backward rule auditable.

use crate::bufpool;
use crate::pool;
use crate::simd;
use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// A `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// A `rows x cols` zero tensor whose buffer comes from the recycling
    /// [`crate::bufpool`] when possible. Numerically identical to
    /// [`Tensor::zeros`]; pair with [`Tensor::recycle`] to keep the buffer
    /// circulating.
    pub fn zeros_pooled(rows: usize, cols: usize) -> Self {
        Self { data: bufpool::acquire_zeroed(rows * cols), rows, cols }
    }

    /// A `rows x cols` tensor with **unspecified contents** from the
    /// recycling pool. Callers must overwrite every element before reading
    /// any — this is the memset-free path for kernels that fully write their
    /// output (see `crate::bufpool` for the determinism contract).
    pub fn scratch_pooled(rows: usize, cols: usize) -> Self {
        Self { data: bufpool::acquire_scratch(rows * cols), rows, cols }
    }

    /// Consume the tensor, returning its buffer to the recycling pool (a
    /// no-op drop when pooling is disabled or the buffer is foreign).
    pub fn recycle(self) {
        bufpool::release(self.data);
    }

    /// Allocated capacity of the underlying buffer in elements (>= `len`;
    /// pooled buffers round up to a power-of-two bucket).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// A `rows x cols` tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Build a tensor from an existing buffer. Panics if the buffer length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: buffer length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Build a tensor by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut out = Self::scratch_pooled(rows, cols);
        for r in 0..rows {
            for (c, o) in out.row_mut(r).iter_mut().enumerate() {
                *o = f(r, c);
            }
        }
        out
    }

    /// A `1 x 1` tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// A column vector `[n, 1]` from a slice.
    pub fn column(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// A row vector `[1, n]` from a slice.
    pub fn row_vec(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single value of a `1 x 1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "Tensor::item on non-scalar {:?}", self.shape());
        self.data[0]
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// A new tensor with the same buffer reinterpreted as `rows x cols`.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            rows * cols,
            self.len(),
            "reshape {:?} -> ({rows},{cols}) changes element count",
            self.shape()
        );
        Tensor { data: self.data.clone(), rows, cols }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::scratch_pooled(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        for (o, &x) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(x);
        }
        out
    }

    /// Apply `f` elementwise against `other` (same shape), returning a new tensor.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = f(a, b);
        }
        out
    }

    /// Like [`Tensor::map`], but element blocks fan out across the thread
    /// pool when the tensor is large enough (see [`crate::pool::threads_for`]).
    /// Every element is transformed independently by the same `f`, so the
    /// result is bitwise identical to `map` for any thread count.
    pub fn par_map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        let len = self.data.len();
        let threads = pool::threads_for(len, len);
        let src = &self.data;
        pool::par_row_blocks(&mut out.data, 1, threads, |i0, block| {
            for (k, o) in block.iter_mut().enumerate() {
                *o = f(src[i0 + k]);
            }
        });
        out
    }

    /// Parallel sibling of [`Tensor::zip_map`]; same determinism contract as
    /// [`Tensor::par_map`].
    pub fn par_zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        let len = self.data.len();
        let threads = pool::threads_for(len, len);
        let a = &self.data;
        let b = &other.data;
        pool::par_row_blocks(&mut out.data, 1, threads, |i0, block| {
            for (k, o) in block.iter_mut().enumerate() {
                *o = f(a[i0 + k], b[i0 + k]);
            }
        });
        out
    }

    /// `self <op> other` elementwise through the lane-parallel
    /// [`crate::simd`] kernels — the explicit-SIMD sibling of
    /// [`Tensor::par_zip_map`] for the four arithmetic ops. Same parallel
    /// partitioning, bitwise identical to the closure path per mode.
    pub fn par_binary(&self, other: &Tensor, op: simd::BinOp) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "par_binary shape mismatch");
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        let len = self.data.len();
        let threads = pool::threads_for(len, len);
        let a = &self.data;
        let b = &other.data;
        pool::par_row_blocks(&mut out.data, 1, threads, |i0, block| {
            let hi = i0 + block.len();
            simd::binary(op, block, &a[i0..hi], &b[i0..hi]);
        });
        out
    }

    /// `c * self` elementwise through the lane-parallel kernels.
    pub fn par_scale(&self, c: f32) -> Tensor {
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        let len = self.data.len();
        let threads = pool::threads_for(len, len);
        let a = &self.data;
        pool::par_row_blocks(&mut out.data, 1, threads, |i0, block| {
            simd::scale(block, &a[i0..i0 + block.len()], c);
        });
        out
    }

    /// `self + c` elementwise through the lane-parallel kernels.
    pub fn par_add_scalar(&self, c: f32) -> Tensor {
        let mut out = Tensor::scratch_pooled(self.rows, self.cols);
        let len = self.data.len();
        let threads = pool::threads_for(len, len);
        let a = &self.data;
        pool::par_row_blocks(&mut out.data, 1, threads, |i0, block| {
            simd::add_scalar(block, &a[i0..i0 + block.len()], c);
        });
        out
    }

    /// `self += other` elementwise. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        simd::acc(&mut self.data, &other.data);
    }

    /// `self += alpha * other` elementwise (axpy). Shapes must match.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        simd::axpy(&mut self.data, &other.data, alpha);
    }

    /// Multiply every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        simd::scale_inplace(&mut self.data, s);
    }

    /// Set every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements (f64 accumulator).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for (i, row) in self.rows_iter().enumerate().take(max_rows) {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate().take(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if row.len() > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed().get(2, 1), t.get(1, 2));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let u = t.reshaped(3, 4);
        assert_eq!(u.get(1, 1), 5.0);
        assert_eq!(t.data(), u.data());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_bad_size_panics() {
        Tensor::zeros(2, 3).reshaped(2, 4);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(2, 2);
        let b = Tensor::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.get(0, 0), 7.0);
        a.scale_inplace(0.5);
        assert_eq!(a.get(1, 1), 3.5);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!((t.sum() - 10.0).abs() < 1e-9);
        assert!((t.mean() - 2.5).abs() < 1e-9);
        assert_eq!(t.max_abs(), 4.0);
        assert!((t.sq_norm() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn item_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn par_maps_match_serial() {
        let t = Tensor::from_fn(7, 5, |r, c| (r * 5 + c) as f32 - 10.0);
        let u = Tensor::from_fn(7, 5, |r, c| (c * 7 + r) as f32 * 0.5);
        assert_eq!(t.par_map(|x| x * 2.0 + 1.0), t.map(|x| x * 2.0 + 1.0));
        assert_eq!(t.par_zip_map(&u, |a, b| a * b - a), t.zip_map(&u, |a, b| a * b - a));
    }
}
