//! Tape-based reverse-mode autograd.
//!
//! A [`Graph`] is a flat tape of nodes built eagerly (define-by-run): each
//! op constructor computes its forward value immediately and records enough
//! context for the backward pass. The tape is rebuilt per batch, which is what
//! makes per-sample dynamic-parameter models (StSTL, APG, M2M) natural to
//! express.
//!
//! Node ids are topologically ordered by construction, so the backward pass is
//! a single reverse sweep over ids (see [`crate::backward`]).
//!
//! Ops whose output elements are independent (elementwise maps, row-broadcast
//! ops, per-row softmax and the fused sequence/meta-linear ops) fan out over
//! [`crate::pool`] row blocks when shapes warrant; cross-row reductions
//! (`sum_cols`, the BN batch statistics, the BCE total) stay serial so their
//! accumulation order — and therefore every result bit — is independent of
//! the thread count.

use crate::bufpool;
use crate::linalg;
use crate::pool;
use crate::params::{ParamId, ParamStore};
use crate::quant::QuantMatrix;
use crate::simd;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw tape index of this node.
    pub fn id(&self) -> usize {
        self.0
    }
}

/// The operation that produced a node. Inputs are tape indices.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Leaf node: external input or parameter.
    Leaf,
    /// `A · B`.
    Matmul { a: usize, b: usize },
    /// Elementwise `a + b` (same shape).
    Add { a: usize, b: usize },
    /// Elementwise `a - b`.
    Sub { a: usize, b: usize },
    /// Elementwise `a * b` (Hadamard).
    Mul { a: usize, b: usize },
    /// Elementwise `a / b`.
    Div { a: usize, b: usize },
    /// `a[m,n] + b[1,n]` broadcast over rows.
    AddRow { a: usize, b: usize },
    /// `a[m,n] * b[1,n]` broadcast over rows.
    MulRow { a: usize, b: usize },
    /// `a[m,n] + b[m,1]` broadcast over columns.
    AddCol { a: usize, b: usize },
    /// `a[m,n] * b[m,1]` broadcast over columns.
    MulCol { a: usize, b: usize },
    /// `c * a`.
    Scale { a: usize, c: f32 },
    /// `a + c`.
    AddScalar { a: usize, #[allow(dead_code)] c: f32 },
    Sigmoid { a: usize },
    Tanh { a: usize },
    Relu { a: usize },
    LeakyRelu { a: usize, slope: f32 },
    Exp { a: usize },
    Ln { a: usize },
    Sqrt { a: usize },
    Square { a: usize },
    /// Row-wise softmax.
    SoftmaxRows { a: usize },
    /// Row-wise softmax over positions where `mask != 0`; masked outputs are 0.
    MaskedSoftmaxRows { a: usize, #[allow(dead_code)] mask: usize },
    /// Horizontal concatenation of parts (equal row counts).
    ConcatCols { parts: Vec<usize> },
    /// Columns `[start, start+len)` of `a`.
    SliceCols { a: usize, start: usize, len: usize },
    /// Sum of all elements, `[1,1]`.
    SumAll { a: usize },
    /// Mean of all elements, `[1,1]`.
    MeanAll { a: usize },
    /// Row sums, `[m,1]`.
    SumRows { a: usize },
    /// Row means, `[m,1]`.
    MeanRows { a: usize },
    /// Column sums, `[1,n]`.
    SumCols { a: usize },
    /// Row-wise dot product of equal-shape tensors, `[m,1]`.
    RowDot { a: usize, b: usize },
    Transpose { a: usize },
    /// Same buffer, new shape.
    Reshape { a: usize },
    /// Row `i` of `a` repeated `times` consecutive rows: `[m,n] -> [m*times,n]`.
    RepeatRows { a: usize, times: usize },
    /// `seq [m, t*d]` weighted by `w [m, t]` -> `[m, d]`.
    SeqWeightedSum { seq: usize, w: usize, t: usize, d: usize },
    /// Per-sample linear map: `w [m, out*inp]` applied to `x [m, inp]` -> `[m, out]`.
    MetaLinear { w: usize, x: usize, out_dim: usize, in_dim: usize },
    /// Like `MetaLinear` but with in-major weight layout: `y_o = Σ_i w[i*out+o]·x_i`.
    MetaLinearInMajor { w: usize, x: usize, out_dim: usize, in_dim: usize },
    /// Per-column batch normalization (no affine) using batch statistics.
    BatchNormTrain { x: usize, eps: f32 },
    /// Per-column normalization with fixed (running) statistics `mean`/`var` `[1,n]`.
    NormalizeEval { x: usize, #[allow(dead_code)] mean: usize, var: usize, eps: f32 },
    /// Mean binary cross-entropy over all elements of `logits` vs `labels`.
    BceWithLogits { logits: usize, labels: usize },
}

/// Extra context saved by ops whose backward (or whose caller) needs it.
#[derive(Debug, Clone)]
pub(crate) enum Saved {
    /// Batch statistics computed by [`Op::BatchNormTrain`].
    BnStats { mean: Vec<f32>, var: Vec<f32> },
}

pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) value: Tensor,
    pub(crate) grad: Option<Tensor>,
    pub(crate) requires_grad: bool,
    pub(crate) saved: Option<Saved>,
}

/// A define-by-run autograd tape.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    param_cache: HashMap<ParamId, Var>,
    pub(crate) param_of_node: HashMap<usize, ParamId>,
    /// Inference-only tape: layers may route through kernels that have no
    /// training semantics (the int8 quantized GEMM). Set by `predict`,
    /// never by `train_step`; cleared on [`Graph::reset`].
    inference: bool,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Bytes held by all node values and gradients currently on the tape —
    /// the activation-memory measurement used by the Table VI accounting.
    /// Counts allocated **capacity**, not logical length, so buffers the
    /// recycling pool rounded up to a bucket size are reported honestly.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                let g = n.grad.as_ref().map_or(0, Tensor::capacity);
                (n.value.capacity() + g) * std::mem::size_of::<f32>()
            })
            .sum()
    }

    /// Clear the tape for reuse, recycling every node's value and gradient
    /// buffer into the [`crate::bufpool`] while retaining the node vector's
    /// and the param maps' own capacity. Records the tape's high-water mark
    /// as the `graph.peak_bytes` gauge before releasing anything.
    pub fn reset(&mut self) {
        if !self.nodes.is_empty() {
            basm_obs::gauge_max("graph.peak_bytes", self.memory_bytes() as u64);
        }
        for node in self.nodes.drain(..) {
            node.value.recycle();
            if let Some(grad) = node.grad {
                grad.recycle();
            }
        }
        self.param_cache.clear();
        self.param_of_node.clear();
        self.inference = false;
    }

    /// Mark (or unmark) this tape inference-only. Inference tapes may use
    /// serve-path-only kernels — today that is the opt-in int8 GEMM in
    /// `nn::Linear` — so `train_step` must never see an inference tape.
    pub fn set_inference(&mut self, on: bool) {
        self.inference = on;
    }

    /// Whether this tape is inference-only (see [`Graph::set_inference`]).
    pub fn inference(&self) -> bool {
        self.inference
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if backward reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Batch statistics `(mean, var)` saved by a [`Graph::batch_norm_train`]
    /// node; used by `BatchNorm1d` to update running statistics.
    pub fn bn_saved(&self, v: Var) -> Option<(&[f32], &[f32])> {
        match &self.nodes[v.0].saved {
            Some(Saved::BnStats { mean, var }) => Some((mean, var)),
            None => None,
        }
    }

    fn push(&mut self, op: Op, value: Tensor, requires_grad: bool) -> Var {
        self.push_saved(op, value, requires_grad, None)
    }

    fn push_saved(
        &mut self,
        op: Op,
        value: Tensor,
        requires_grad: bool,
        saved: Option<Saved>,
    ) -> Var {
        debug_assert!(value.all_finite(), "non-finite forward value from {op:?}");
        self.nodes.push(Node { op, value, grad: None, requires_grad, saved });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, id: usize) -> bool {
        self.nodes[id].requires_grad
    }

    // ---------------------------------------------------------------- leaves

    /// A constant leaf (no gradient flows into it).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t, false)
    }

    /// A leaf that accumulates gradient (used for embedding lookups whose
    /// gradient is scatter-applied outside the graph).
    pub fn input_with_grad(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t, true)
    }

    /// A parameter leaf: copies the parameter's current value onto the tape
    /// and remembers the mapping so [`ParamStore::accumulate_grads`] can pull
    /// the gradient back. Repeated calls with the same id reuse the node.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let v = self.push(Op::Leaf, store.value(id).clone(), true);
        self.param_cache.insert(id, v);
        self.param_of_node.insert(v.0, id);
        v
    }

    // ------------------------------------------------------------ binary ops

    /// `a · b` for `a [m,k]`, `b [k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = linalg::matmul(self.value(a), self.value(b));
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::Matmul { a: a.0, b: b.0 }, v, rg)
    }

    /// `a · dequant(qw)` through the int8 GEMM (`crate::quant`) — the opt-in
    /// quantized serve path. `w` must be the f32 parameter node `qw` was
    /// derived from: the tape records a plain [`Op::Matmul`] on it, so in
    /// the (unreachable in practice) event backward runs on an inference
    /// tape, gradients are the straight-through f32 ones.
    pub fn matmul_quant(&mut self, a: Var, w: Var, qw: &QuantMatrix) -> Var {
        debug_assert_eq!(self.value(w).shape(), qw.shape(), "matmul_quant: stale QuantMatrix");
        let v = crate::quant::matmul_quant(self.value(a), qw);
        let rg = self.rg(a.0) || self.rg(w.0);
        self.push(Op::Matmul { a: a.0, b: w.0 }, v, rg)
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).par_binary(self.value(b), simd::BinOp::Add);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::Add { a: a.0, b: b.0 }, v, rg)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).par_binary(self.value(b), simd::BinOp::Sub);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::Sub { a: a.0, b: b.0 }, v, rg)
    }

    /// Elementwise (Hadamard) product; shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).par_binary(self.value(b), simd::BinOp::Mul);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::Mul { a: a.0, b: b.0 }, v, rg)
    }

    /// Elementwise quotient; shapes must match and `b` must be nonzero.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).par_binary(self.value(b), simd::BinOp::Div);
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::Div { a: a.0, b: b.0 }, v, rg)
    }

    /// `a [m,n] + b [1,n]`, `b` broadcast over rows (bias add).
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (1, n), "add_row: b must be [1,{n}]");
        let bd = self.value(b).data();
        let av = self.value(a);
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                simd::binary(simd::BinOp::Add, orow, av.row(i0 + ri), bd);
            }
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::AddRow { a: a.0, b: b.0 }, out, rg)
    }

    /// `a [m,n] * b [1,n]`, `b` broadcast over rows.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (1, n), "mul_row: b must be [1,{n}]");
        let bd = self.value(b).data();
        let av = self.value(a);
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                simd::binary(simd::BinOp::Mul, orow, av.row(i0 + ri), bd);
            }
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::MulRow { a: a.0, b: b.0 }, out, rg)
    }

    /// `a [m,n] + b [m,1]`, `b` broadcast over columns.
    pub fn add_col(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (m, 1), "add_col: b must be [{m},1]");
        let bd = self.value(b).data();
        let av = self.value(a);
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                let r = i0 + ri;
                simd::add_scalar(orow, av.row(r), bd[r]);
            }
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::AddCol { a: a.0, b: b.0 }, out, rg)
    }

    /// `a [m,n] * b [m,1]`, `b` broadcast over columns (per-row scaling —
    /// how StAEL applies its field weight α).
    pub fn mul_col(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (m, 1), "mul_col: b must be [{m},1]");
        let bd = self.value(b).data();
        let av = self.value(a);
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                let r = i0 + ri;
                simd::scale(orow, av.row(r), bd[r]);
            }
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::MulCol { a: a.0, b: b.0 }, out, rg)
    }

    // ------------------------------------------------------------- unary ops

    /// `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).par_scale(c);
        let rg = self.rg(a.0);
        self.push(Op::Scale { a: a.0, c }, v, rg)
    }

    /// `a + c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).par_add_scalar(c);
        let rg = self.rg(a.0);
        self.push(Op::AddScalar { a: a.0, c }, v, rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(stable_sigmoid);
        let rg = self.rg(a.0);
        self.push(Op::Sigmoid { a: a.0 }, v, rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(f32::tanh);
        let rg = self.rg(a.0);
        self.push(Op::Tanh { a: a.0 }, v, rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(|x| x.max(0.0));
        let rg = self.rg(a.0);
        self.push(Op::Relu { a: a.0 }, v, rg)
    }

    /// Leaky ReLU with the given negative slope (the paper's activation).
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.value(a).par_map(|x| if x > 0.0 { x } else { slope * x });
        let rg = self.rg(a.0);
        self.push(Op::LeakyRelu { a: a.0, slope }, v, rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(f32::exp);
        let rg = self.rg(a.0);
        self.push(Op::Exp { a: a.0 }, v, rg)
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(f32::ln);
        let rg = self.rg(a.0);
        self.push(Op::Ln { a: a.0 }, v, rg)
    }

    /// Elementwise square root (inputs must be non-negative).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(f32::sqrt);
        let rg = self.rg(a.0);
        self.push(Op::Sqrt { a: a.0 }, v, rg)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).par_map(|x| x * x);
        let rg = self.rg(a.0);
        self.push(Op::Square { a: a.0 }, v, rg)
    }

    // ------------------------------------------------------- softmax / shape

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                softmax_into(av.row(i0 + ri), orow);
            }
        });
        let rg = self.rg(a.0);
        self.push(Op::SoftmaxRows { a: a.0 }, out, rg)
    }

    /// Row-wise softmax restricted to positions where `mask != 0`; masked
    /// positions produce 0. A fully masked row produces all zeros.
    pub fn masked_softmax_rows(&mut self, a: Var, mask: Var) -> Var {
        let av = self.value(a);
        let mv = self.value(mask);
        assert_eq!(av.shape(), mv.shape(), "masked_softmax: shape mismatch");
        let (m, n) = av.shape();
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                masked_softmax_into(av.row(i0 + ri), mv.row(i0 + ri), orow);
            }
        });
        let rg = self.rg(a.0);
        self.push(Op::MaskedSoftmaxRows { a: a.0, mask: mask.0 }, out, rg)
    }

    /// Horizontal concatenation; all parts must have the same row count.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: empty parts");
        let m = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| {
            let t = self.value(p);
            assert_eq!(t.rows(), m, "concat_cols: row mismatch");
            t.cols()
        }).sum();
        let mut out = Tensor::scratch_pooled(m, total);
        let mut offset = 0;
        for &p in parts {
            let t = &self.nodes[p.0].value;
            let w = t.cols();
            for r in 0..m {
                out.row_mut(r)[offset..offset + w].copy_from_slice(t.row(r));
            }
            offset += w;
        }
        let rg = parts.iter().any(|&p| self.rg(p.0));
        self.push(Op::ConcatCols { parts: parts.iter().map(|p| p.0).collect() }, out, rg)
    }

    /// Columns `[start, start+len)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        assert!(start + len <= n, "slice_cols: [{start},{}) out of {n}", start + len);
        let mut out = Tensor::scratch_pooled(m, len);
        for r in 0..m {
            out.row_mut(r).copy_from_slice(&av.row(r)[start..start + len]);
        }
        let rg = self.rg(a.0);
        self.push(Op::SliceCols { a: a.0, start, len }, out, rg)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transposed();
        let rg = self.rg(a.0);
        self.push(Op::Transpose { a: a.0 }, v, rg)
    }

    /// Reinterpret the buffer as `rows x cols` (element count preserved).
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let v = self.value(a).reshaped(rows, cols);
        let rg = self.rg(a.0);
        self.push(Op::Reshape { a: a.0 }, v, rg)
    }

    /// Repeat each row `times` consecutive times: `[m,n] -> [m*times, n]`.
    /// Pairs a per-sample query with every sequence position.
    pub fn repeat_rows(&mut self, a: Var, times: usize) -> Var {
        assert!(times > 0, "repeat_rows: times must be positive");
        let av = self.value(a);
        let (m, n) = av.shape();
        let mut out = Tensor::scratch_pooled(m * times, n);
        let threads = pool::threads_for(m * times, m * times * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                orow.copy_from_slice(av.row((i0 + ri) / times));
            }
        });
        let rg = self.rg(a.0);
        self.push(Op::RepeatRows { a: a.0, times }, out, rg)
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements, `[1,1]`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum() as f32);
        let rg = self.rg(a.0);
        self.push(Op::SumAll { a: a.0 }, v, rg)
    }

    /// Mean of all elements, `[1,1]`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean() as f32);
        let rg = self.rg(a.0);
        self.push(Op::MeanAll { a: a.0 }, v, rg)
    }

    /// Row sums: `[m,n] -> [m,1]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let v = Tensor::from_fn(av.rows(), 1, |r, _| av.row(r).iter().sum());
        let rg = self.rg(a.0);
        self.push(Op::SumRows { a: a.0 }, v, rg)
    }

    /// Row means: `[m,n] -> [m,1]`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let n = av.cols().max(1) as f32;
        let v = Tensor::from_fn(av.rows(), 1, |r, _| av.row(r).iter().sum::<f32>() / n);
        let rg = self.rg(a.0);
        self.push(Op::MeanRows { a: a.0 }, v, rg)
    }

    /// Column sums: `[m,n] -> [1,n]`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        // Accumulating op: the output must start at exact 0.0.
        let mut out = Tensor::zeros_pooled(1, n);
        for r in 0..m {
            for (o, &x) in out.row_mut(0).iter_mut().zip(av.row(r).iter()) {
                *o += x;
            }
        }
        let rg = self.rg(a.0);
        self.push(Op::SumCols { a: a.0 }, out, rg)
    }

    /// Row-wise dot product of equal-shape tensors: `[m,n],[m,n] -> [m,1]`.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.shape(), bv.shape(), "row_dot: shape mismatch");
        let (m, n) = av.shape();
        let mut v = Tensor::scratch_pooled(m, 1);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(v.data_mut(), 1, threads, |i0, block| {
            for (ri, o) in block.iter_mut().enumerate() {
                *o = linalg::dot(av.row(i0 + ri), bv.row(i0 + ri));
            }
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(Op::RowDot { a: a.0, b: b.0 }, v, rg)
    }

    // ---------------------------------------------------------- fused ops

    /// Weighted sum over sequence positions: `seq [m, t*d]` with weights
    /// `w [m, t]` gives `[m, d]`: `out[r] = Σ_t w[r,t] · seq[r, t·d .. t·d+d]`.
    pub fn seq_weighted_sum(&mut self, seq: Var, w: Var, t: usize, d: usize) -> Var {
        let sv = self.value(seq);
        let wv = self.value(w);
        let m = sv.rows();
        assert_eq!(sv.cols(), t * d, "seq_weighted_sum: seq cols {} != {t}*{d}", sv.cols());
        assert_eq!(wv.shape(), (m, t), "seq_weighted_sum: weights must be [{m},{t}]");
        let _span = basm_obs::span!("tensor.seq_weighted_sum", rows = m, t, d);
        // Accumulating op (masked positions are skipped): needs exact zeros.
        let mut out = Tensor::zeros_pooled(m, d);
        let threads = pool::threads_for(m, m * t * d);
        pool::par_row_blocks(out.data_mut(), d, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(d).enumerate() {
                let srow = sv.row(i0 + ri);
                let wrow = wv.row(i0 + ri);
                for (ti, &wt) in wrow.iter().enumerate() {
                    // Masked positions (w = 0) contribute nothing; skipping
                    // them is per-row, so the partition cannot change results.
                    if wt == 0.0 {
                        continue;
                    }
                    let sblock = &srow[ti * d..(ti + 1) * d];
                    simd::axpy(orow, sblock, wt);
                }
            }
        });
        let rg = self.rg(seq.0) || self.rg(w.0);
        self.push(Op::SeqWeightedSum { seq: seq.0, w: w.0, t, d }, out, rg)
    }

    /// Per-sample linear map (the dynamic layer of StSTL / APG / M2M):
    /// `w [m, out*inp]` holds a row-major `out x inp` matrix per sample,
    /// applied to `x [m, inp]` giving `[m, out]`.
    pub fn meta_linear(&mut self, w: Var, x: Var, out_dim: usize, in_dim: usize) -> Var {
        let wv = self.value(w);
        let xv = self.value(x);
        let m = xv.rows();
        assert_eq!(xv.cols(), in_dim, "meta_linear: x cols {} != {in_dim}", xv.cols());
        assert_eq!(
            wv.shape(),
            (m, out_dim * in_dim),
            "meta_linear: w must be [{m},{}]",
            out_dim * in_dim
        );
        let _span = basm_obs::span!("tensor.meta_linear", rows = m, out_dim, in_dim);
        let mut out = Tensor::scratch_pooled(m, out_dim);
        let threads = pool::threads_for(m, m * out_dim * in_dim);
        pool::par_row_blocks(out.data_mut(), out_dim, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(out_dim).enumerate() {
                let wrow = wv.row(i0 + ri);
                let xrow = xv.row(i0 + ri);
                for (o, oval) in orow.iter_mut().enumerate() {
                    *oval = linalg::dot(&wrow[o * in_dim..(o + 1) * in_dim], xrow);
                }
            }
        });
        let rg = self.rg(w.0) || self.rg(x.0);
        self.push(Op::MetaLinear { w: w.0, x: x.0, out_dim, in_dim }, out, rg)
    }

    /// Per-sample linear map with **in-major** weight layout (a flattened
    /// `[in, out]` matrix per sample): `y_o = Σ_i w[i*out + o] · x_i`.
    /// Used where the per-sample weight is built by broadcasting a shared
    /// `[in, out]` dense weight (e.g. STAR's `W_s ⊙ W_d`).
    pub fn meta_linear_in_major(
        &mut self,
        w: Var,
        x: Var,
        out_dim: usize,
        in_dim: usize,
    ) -> Var {
        let wv = self.value(w);
        let xv = self.value(x);
        let m = xv.rows();
        assert_eq!(xv.cols(), in_dim, "meta_linear_in_major: x cols {} != {in_dim}", xv.cols());
        assert_eq!(
            wv.shape(),
            (m, out_dim * in_dim),
            "meta_linear_in_major: w must be [{m},{}]",
            out_dim * in_dim
        );
        let _span = basm_obs::span!("tensor.meta_linear_in_major", rows = m, out_dim, in_dim);
        // Accumulating op (zero inputs are skipped): needs exact zeros.
        let mut out = Tensor::zeros_pooled(m, out_dim);
        let threads = pool::threads_for(m, m * out_dim * in_dim);
        pool::par_row_blocks(out.data_mut(), out_dim, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(out_dim).enumerate() {
                let wrow = wv.row(i0 + ri);
                let xrow = xv.row(i0 + ri);
                for (i, &xi) in xrow.iter().enumerate() {
                    // Per-row skip of zero inputs (sparse one-hot features);
                    // does not interact with the thread partition.
                    if xi == 0.0 {
                        continue;
                    }
                    let wblock = &wrow[i * out_dim..(i + 1) * out_dim];
                    simd::axpy(orow, wblock, xi);
                }
            }
        });
        let rg = self.rg(w.0) || self.rg(x.0);
        self.push(Op::MetaLinearInMajor { w: w.0, x: x.0, out_dim, in_dim }, out, rg)
    }

    // --------------------------------------------------------- normalization

    /// Batch normalization core (no affine): per-column standardization with
    /// the batch's own statistics. Saves `(mean, var)` retrievable via
    /// [`Graph::bn_saved`] so layers can maintain running statistics.
    pub fn batch_norm_train(&mut self, x: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let (m, n) = xv.shape();
        assert!(m > 0, "batch_norm_train: empty batch");
        let mut mean = vec![0.0f32; n];
        let mut var = vec![0.0f32; n];
        for r in 0..m {
            for (j, &v) in xv.row(r).iter().enumerate() {
                mean[j] += v;
            }
        }
        for mj in &mut mean {
            *mj /= m as f32;
        }
        for r in 0..m {
            for (j, &v) in xv.row(r).iter().enumerate() {
                let d = v - mean[j];
                var[j] += d * d;
            }
        }
        for vj in &mut var {
            *vj /= m as f32;
        }
        // The per-row standardization is independent across rows; the batch
        // statistics above stay serial because their accumulation order is
        // part of the deterministic contract.
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                let xrow = xv.row(i0 + ri);
                for j in 0..n {
                    orow[j] = (xrow[j] - mean[j]) / (var[j] + eps).sqrt();
                }
            }
        });
        let rg = self.rg(x.0);
        self.push_saved(
            Op::BatchNormTrain { x: x.0, eps },
            out,
            rg,
            Some(Saved::BnStats { mean, var }),
        )
    }

    /// Normalization with fixed statistics (inference mode): `mean`/`var` are
    /// `[1,n]` constant nodes (no gradient flows into them).
    pub fn normalize_eval(&mut self, x: Var, mean: Var, var: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let (m, n) = xv.shape();
        assert_eq!(self.value(mean).shape(), (1, n), "normalize_eval: mean must be [1,{n}]");
        assert_eq!(self.value(var).shape(), (1, n), "normalize_eval: var must be [1,{n}]");
        let mu = self.value(mean).data();
        let va = self.value(var).data();
        let mut out = Tensor::scratch_pooled(m, n);
        let threads = pool::threads_for(m, m * n);
        pool::par_row_blocks(out.data_mut(), n, threads, |i0, block| {
            for (ri, orow) in block.chunks_mut(n).enumerate() {
                let xrow = xv.row(i0 + ri);
                for j in 0..n {
                    orow[j] = (xrow[j] - mu[j]) / (va[j] + eps).sqrt();
                }
            }
        });
        let rg = self.rg(x.0);
        self.push(Op::NormalizeEval { x: x.0, mean: mean.0, var: var.0, eps }, out, rg)
    }

    // ----------------------------------------------------------------- loss

    /// Numerically stable mean binary cross-entropy from logits (Eq. 19 of the
    /// paper, with the sigmoid of Eq. 18 fused in). `labels` carries no grad.
    pub fn bce_with_logits(&mut self, logits: Var, labels: Var) -> Var {
        let zv = self.value(logits);
        let yv = self.value(labels);
        assert_eq!(zv.shape(), yv.shape(), "bce_with_logits: shape mismatch");
        let count = zv.len().max(1) as f64;
        let mut total = 0.0f64;
        for (&z, &y) in zv.data().iter().zip(yv.data().iter()) {
            // max(z,0) - z*y + ln(1 + exp(-|z|))
            let term = z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
            total += term as f64;
        }
        let v = Tensor::scalar((total / count) as f32);
        let rg = self.rg(logits.0);
        self.push(Op::BceWithLogits { logits: logits.0, labels: labels.0 }, v, rg)
    }
}

impl Drop for Graph {
    /// Dropping a graph recycles its buffers into the pool (a plain free
    /// when pooling is off), so even call sites that build a one-shot
    /// `Graph::new()` feed the steady-state reuse path.
    fn drop(&mut self) {
        self.reset();
    }
}

/// Graphs retained per thread by [`with_graph`]. Serving fans one request
/// out per worker thread and each worker needs at most one live graph, but
/// a couple of spares cover nested/evaluation use without unbounded growth.
const MAX_CACHED_GRAPHS: usize = 4;

thread_local! {
    static GRAPH_CACHE: RefCell<Vec<Graph>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a recycled [`Graph`]: the tape arrives empty but retains the
/// node storage, param-map and tensor-buffer capacity of previous steps, so
/// steady-state training/serving stops cold-allocating. With pooling
/// disabled (`BASM_POOL=0`) this degrades to a fresh `Graph::new()` per call
/// — the exact cold path. The graph is cached per thread, so concurrent
/// workers never contend on a shared arena.
pub fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    if !bufpool::pooling_enabled() {
        let mut g = Graph::new();
        return f(&mut g);
    }
    let mut g = GRAPH_CACHE
        .with(|c| c.borrow_mut().pop())
        .unwrap_or_default();
    let out = f(&mut g);
    g.reset();
    GRAPH_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() < MAX_CACHED_GRAPHS {
            cache.push(g);
        }
    });
    out
}

/// Numerically stable logistic function.
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

pub(crate) fn softmax_into(input: &[f32], out: &mut [f32]) {
    let max = input.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    // Lane-parallel subtract (exact per element); the exp+sum fold stays
    // serial because its accumulation order is part of the bitwise contract.
    simd::sub_scalar(out, input, max);
    let mut sum = 0.0f32;
    for o in out.iter_mut() {
        let e = o.exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        // One divisor for the whole row — exact per element, lane-safe.
        simd::div_scalar_inplace(out, sum);
    }
}

pub(crate) fn masked_softmax_into(input: &[f32], mask: &[f32], out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (&x, &m) in input.iter().zip(mask.iter()) {
        if m != 0.0 && x > max {
            max = x;
        }
    }
    if max == f32::NEG_INFINITY {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for ((o, &x), &m) in out.iter_mut().zip(input.iter()).zip(mask.iter()) {
        if m != 0.0 {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        } else {
            *o = 0.0;
        }
    }
    if sum > 0.0 {
        simd::div_scalar_inplace(out, sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matmul_add() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.input(Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data(), &[19.0, 22.0, 43.0, 50.0]);
        let d = g.add(c, c);
        assert_eq!(g.value(d).get(0, 0), 38.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = g.softmax_rows(a);
        for r in 0..2 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_softmax_zeroes_masked() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(1, 3, vec![1.0, 100.0, 2.0]));
        let m = g.input(Tensor::from_vec(1, 3, vec![1.0, 0.0, 1.0]));
        let s = g.masked_softmax_rows(a, m);
        assert_eq!(g.value(s).get(0, 1), 0.0);
        let sum: f32 = g.value(s).row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_masked_is_zero() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let m = g.input(Tensor::zeros(1, 2));
        let s = g.masked_softmax_rows(a, m);
        assert_eq!(g.value(s).data(), &[0.0, 0.0]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.input(Tensor::from_vec(2, 1, vec![9.0, 8.0]));
        let c = g.concat_cols(&[a, b]);
        assert_eq!(g.value(c).shape(), (2, 3));
        assert_eq!(g.value(c).row(1), &[3.0, 4.0, 8.0]);
        let s = g.slice_cols(c, 2, 1);
        assert_eq!(g.value(s).data(), &[9.0, 8.0]);
    }

    #[test]
    fn repeat_rows_layout() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let r = g.repeat_rows(a, 3);
        assert_eq!(g.value(r).shape(), (6, 2));
        assert_eq!(g.value(r).row(0), &[1.0, 2.0]);
        assert_eq!(g.value(r).row(2), &[1.0, 2.0]);
        assert_eq!(g.value(r).row(3), &[3.0, 4.0]);
    }

    #[test]
    fn seq_weighted_sum_forward() {
        let mut g = Graph::new();
        // 1 sample, t=2, d=2: positions [1,2] and [3,4]; weights [0.5, 2.0]
        let seq = g.input(Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let w = g.input(Tensor::from_vec(1, 2, vec![0.5, 2.0]));
        let out = g.seq_weighted_sum(seq, w, 2, 2);
        assert_eq!(g.value(out).data(), &[6.5, 9.0]);
    }

    #[test]
    fn meta_linear_forward() {
        let mut g = Graph::new();
        // per-sample W = [[1,0],[0,2],[1,1]] (3x2), x = [3, 5] -> y = [3, 10, 8]
        let w = g.input(Tensor::from_vec(1, 6, vec![1.0, 0.0, 0.0, 2.0, 1.0, 1.0]));
        let x = g.input(Tensor::from_vec(1, 2, vec![3.0, 5.0]));
        let y = g.meta_linear(w, x, 3, 2);
        assert_eq!(g.value(y).data(), &[3.0, 10.0, 8.0]);
    }

    #[test]
    fn batch_norm_train_standardizes() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]));
        let y = g.batch_norm_train(x, 1e-5);
        let v = g.value(y);
        let mean: f32 = v.data().iter().sum::<f32>() / 4.0;
        let var: f32 = v.data().iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        let (m, s) = g.bn_saved(y).unwrap();
        assert!((m[0] - 2.5).abs() < 1e-6);
        assert!((s[0] - 1.25).abs() < 1e-5);
    }

    #[test]
    fn bce_known_value() {
        let mut g = Graph::new();
        let z = g.input(Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let y = g.input(Tensor::from_vec(2, 1, vec![1.0, 0.0]));
        let l = g.bce_with_logits(z, y);
        // -ln(0.5) for both.
        assert!((g.value(l).item() - 0.6931472).abs() < 1e-5);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999_999);
        assert!(stable_sigmoid(-100.0) < 1e-6);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}
