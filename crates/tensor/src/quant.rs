//! Opt-in int8 post-training-quantized scoring (`BASM_QUANT=int8`).
//!
//! The classic production trade for real-time CTR serving: the scorer's
//! dense weights are quantized **once at checkpoint-attach time** to
//! per-output-channel symmetric int8 ([`QuantMatrix`]), activations are
//! quantized dynamically per row, and the GEMM runs i8×i8→i32 with an
//! f32 dequant-fused epilogue (`acc · scale_x · scale_w[j]`). Embedding rows
//! stay f32 — they are the model's sparse memory, and quantizing them moves
//! accuracy for no kernel win (the dense GEMMs dominate the serve profile,
//! see `results/BENCH_memo.json`).
//!
//! Scheme, per weight matrix `W [k,n]` (output channel = column `j`):
//!
//! * `scale_w[j] = max_p |W[p,j]| / 127`, `Q[p,j] = round(W[p,j] /
//!   scale_w[j])` clamped to `[-127, 127]` (symmetric, `-128` unused).
//! * Per activation row `x`: `scale_x = max_j |x[j]| / 127`, same rounding.
//! * `C[i,j] = (Σ_p qx[p] · Q[p,j]) · scale_x[i] · scale_w[j]` — the i32
//!   accumulator is exact (`127·127·k` needs `k > 133 000` to overflow; the
//!   widest dense layer here is ~300), so results are batch- and
//!   thread-partition-invariant like every other kernel in this crate.
//!
//! **Never NaN/Inf:** scales are built from a finite-filtered `amax`, non-
//! finite weights/activations quantize to `0`/`±127`, and the epilogue is
//! `finite i32 · finite f32 · finite f32` — so a quantized scorer cannot emit
//! a non-finite logit even from poisoned inputs (pinned by proptest; composes
//! with the `rank_top_k` non-finite guard).
//!
//! This path is **inference-only and opt-in**: training always sees f32
//! (`Graph` only routes through [`matmul_quant`] in inference mode, see
//! `nn/linear.rs`), gradients never flow through it, and any weight mutation
//! invalidates the prepared [`QuantMatrix`] (see
//! [`crate::ParamStore::value_mut`]). Accuracy cost is measured, not
//! assumed: `results/BENCH_quant.json` pins |ΔAUC| < 0.002 vs f32 on the
//! table4/table7 setups.

use crate::pool;
use crate::tensor::Tensor;
use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

/// Programmatic override: -1 = follow `BASM_QUANT`, 0 = off, 1 = on.
static QUANT_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// `BASM_QUANT` resolution, computed once. Only `int8` (or `1`/`on`/`true`)
/// turns the path on; unset means **off** — unlike `BASM_SIMD`, quantization
/// moves bits by design, so it is opt-in.
static ENV_QUANT: OnceLock<bool> = OnceLock::new();

fn env_quant() -> bool {
    *ENV_QUANT.get_or_init(|| match std::env::var("BASM_QUANT") {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "int8" | "1" | "on" | "true"),
        Err(_) => false,
    })
}

/// Whether the int8 serve path is requested (`BASM_QUANT` / [`set_quant`]).
#[inline]
pub fn quant_enabled() -> bool {
    match QUANT_OVERRIDE.load(Ordering::Relaxed) {
        -1 => env_quant(),
        0 => false,
        _ => true,
    }
}

/// Override the runtime toggle (`Some(on)`), or restore the `BASM_QUANT`
/// default (`None`). Used by `bench_quant` to compare f32 and int8 scoring
/// within one process.
pub fn set_quant(on: Option<bool>) {
    QUANT_OVERRIDE.store(on.map_or(-1, |b| b as i8), Ordering::Relaxed);
}

/// Test-only guard: serializes tests that toggle the quant override (they
/// share one process-global atomic), forces it **on**, and restores the
/// `BASM_QUANT` default when dropped.
#[cfg(test)]
pub(crate) fn tests_force_quant() -> impl Drop {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    struct Guard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            set_quant(None);
        }
    }
    let g = Guard(LOCK.lock().unwrap_or_else(|e| e.into_inner()));
    set_quant(Some(true));
    g
}

/// A dense weight matrix quantized to per-output-channel symmetric int8.
#[derive(Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    /// Row-major `[rows, cols]`, same layout as the f32 original.
    q: Vec<i8>,
    /// Per-column dequant scale, length `cols`.
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantize `w [k,n]` with one symmetric scale per output column.
    /// Non-finite entries are excluded from the `amax` fold and quantize to
    /// `0`; an all-zero (or all-non-finite) column gets scale `0` and
    /// dequantizes to exact `0.0`.
    pub fn quantize(w: &Tensor) -> Self {
        let (rows, cols) = w.shape();
        let wd = w.data();
        let mut scales = vec![0.0f32; cols];
        for row in wd.chunks_exact(cols) {
            for (s, &v) in scales.iter_mut().zip(row.iter()) {
                let a = v.abs();
                if a.is_finite() && a > *s {
                    *s = a;
                }
            }
        }
        for s in scales.iter_mut() {
            *s /= 127.0;
        }
        let mut q = vec![0i8; rows * cols];
        for (qrow, row) in q.chunks_exact_mut(cols).zip(wd.chunks_exact(cols)) {
            for ((qv, &v), &s) in qrow.iter_mut().zip(row.iter()).zip(scales.iter()) {
                if s > 0.0 {
                    // `as i8` saturates and maps NaN to 0; the clamp keeps
                    // the code point symmetric at ±127 anyway.
                    *qv = (v / s).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
        Self { rows, cols, q, scales }
    }

    /// `(rows, cols)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Per-output-channel dequant scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Quantized code points, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.q
    }

    /// Reconstruct the f32 matrix (`codes · scales`) — test/verification aid.
    pub fn dequantize(&self) -> Tensor {
        let mut t = Tensor::zeros(self.rows, self.cols);
        for (drow, qrow) in t.data_mut().chunks_exact_mut(self.cols).zip(self.q.chunks_exact(self.cols))
        {
            for ((d, &qv), &s) in drow.iter_mut().zip(qrow.iter()).zip(self.scales.iter()) {
                *d = qv as f32 * s;
            }
        }
        t
    }

    /// Footprint of the quantized representation in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.q.len() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// Quantize one activation row symmetrically into `q`, returning the scale.
/// Non-finite inputs never poison the scale: `NaN → 0`, `±Inf → ±127`.
pub fn quantize_row(x: &[f32], q: &mut [i8]) -> f32 {
    debug_assert_eq!(x.len(), q.len());
    let mut amax = 0.0f32;
    for &v in x {
        let a = v.abs();
        if a.is_finite() && a > amax {
            amax = a;
        }
    }
    let scale = amax / 127.0;
    if scale == 0.0 {
        q.fill(0);
        return 0.0;
    }
    for (qv, &v) in q.iter_mut().zip(x.iter()) {
        *qv = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// `C = quant(A) · Q` — the int8 serve GEMM. `a [m,k]` is quantized row by
/// row on the fly; the i8×i8 products accumulate in i32 (exact) and the
/// epilogue dequantizes with `scale_a[i] · scale_w[j]`. Row-parallel like
/// every other kernel; integer accumulation makes the result independent of
/// batch composition and thread partition by construction.
pub fn matmul_quant(a: &Tensor, w: &QuantMatrix) -> Tensor {
    let (m, k) = a.shape();
    assert_eq!(k, w.rows, "matmul_quant: inner dims {k} vs {} (A {m}x{k}, Q {}x{})", w.rows, w.rows, w.cols);
    let n = w.cols;
    let _span = basm_obs::span!("tensor.matmul_quant", rows = m, inner = k, cols = n);
    debug_assert!(k < (i32::MAX / (127 * 127)) as usize, "matmul_quant: k={k} could overflow i32");
    let mut c = Tensor::scratch_pooled(m, n);
    let ad = a.data();
    let threads = pool::threads_for(m, m * k * n);
    pool::par_row_blocks(c.data_mut(), n, threads, |i0, block| {
        let mut qx = vec![0i8; k];
        let mut acc = vec![0i32; n];
        for (ri, crow) in block.chunks_mut(n).enumerate() {
            let xrow = &ad[(i0 + ri) * k..(i0 + ri + 1) * k];
            let sx = quantize_row(xrow, &mut qx);
            if sx == 0.0 {
                crow.fill(0.0);
                continue;
            }
            acc.fill(0);
            for (p, &qv) in qx.iter().enumerate() {
                if qv == 0 {
                    continue;
                }
                let v = qv as i32;
                let wrow = &w.q[p * n..(p + 1) * n];
                for (av, &wq) in acc.iter_mut().zip(wrow.iter()) {
                    *av += v * wq as i32;
                }
            }
            for ((cv, &av), &sw) in crow.iter_mut().zip(acc.iter()).zip(w.scales.iter()) {
                *cv = av as f32 * (sx * sw);
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg;
    use crate::rng::Prng;

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let mut rng = Prng::seeded(7);
        let w = rng.randn(40, 13, 2.0);
        let qm = QuantMatrix::quantize(&w);
        let back = qm.dequantize();
        for j in 0..13 {
            let s = qm.scales()[j];
            for i in 0..40 {
                let err = (w.get(i, j) - back.get(i, j)).abs();
                // round() is to nearest: reconstruction is within scale/2
                // (plus one ulp of slack for the divide/multiply round trip).
                assert!(err <= s * 0.5 + s * 1e-5, "err {err} > half-scale {}", s * 0.5);
            }
        }
    }

    #[test]
    fn saturation_at_127() {
        // A column whose max is finite but contains ±Inf: Inf must clamp to
        // the end of the code book, not poison the scale.
        let mut w = Tensor::zeros(4, 1);
        w.data_mut().copy_from_slice(&[1.0, -2.0, f32::INFINITY, f32::NEG_INFINITY]);
        let qm = QuantMatrix::quantize(&w);
        assert_eq!(qm.codes()[2], 127);
        assert_eq!(qm.codes()[3], -127);
        assert!((qm.scales()[0] - 2.0 / 127.0).abs() < 1e-9);
        // NaN quantizes to zero.
        let mut w2 = Tensor::zeros(2, 1);
        w2.data_mut().copy_from_slice(&[f32::NAN, 3.0]);
        let q2 = QuantMatrix::quantize(&w2);
        assert_eq!(q2.codes()[0], 0);
        assert_eq!(q2.codes()[1], 127);
    }

    #[test]
    fn all_zero_column_dequantizes_to_exact_zero() {
        let w = Tensor::zeros(8, 3);
        let qm = QuantMatrix::quantize(&w);
        assert!(qm.scales().iter().all(|&s| s == 0.0));
        assert!(qm.dequantize().data().iter().all(|&v| v == 0.0));
        let x = Tensor::ones(2, 8);
        let c = matmul_quant(&x, &qm);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn quant_gemm_tracks_f32_gemm() {
        let mut rng = Prng::seeded(11);
        let x = rng.randn(6, 32, 1.0);
        let w = rng.randn(32, 9, 0.5);
        let qm = QuantMatrix::quantize(&w);
        let exact = linalg::matmul(&x, &w);
        let quant = matmul_quant(&x, &qm);
        for (e, q) in exact.data().iter().zip(quant.data().iter()) {
            // Worst-case relative error of 8-bit symmetric quant on k=32 is
            // comfortably inside a few percent of the activation·weight
            // magnitude scale.
            assert!((e - q).abs() < 0.15, "f32 {e} vs int8 {q}");
        }
    }

    #[test]
    fn quant_gemm_batch_invariant() {
        // Row i's output must not depend on which rows share the batch —
        // same property the serving microbatch coalescing relies on.
        let mut rng = Prng::seeded(13);
        let x = rng.randn(5, 16, 1.0);
        let w = rng.randn(16, 7, 1.0);
        let qm = QuantMatrix::quantize(&w);
        let full = matmul_quant(&x, &qm);
        for i in 0..5 {
            let mut row = Tensor::zeros(1, 16);
            row.data_mut().copy_from_slice(&x.data()[i * 16..(i + 1) * 16]);
            let alone = matmul_quant(&row, &qm);
            assert_eq!(
                alone.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                full.data()[i * 7..(i + 1) * 7].iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn non_finite_activations_never_produce_non_finite_output() {
        let mut rng = Prng::seeded(17);
        let w = rng.randn(8, 4, 1.0);
        let qm = QuantMatrix::quantize(&w);
        let mut x = Tensor::zeros(3, 8);
        x.data_mut()[0] = f32::NAN;
        x.data_mut()[9] = f32::INFINITY;
        x.data_mut()[17] = f32::NEG_INFINITY;
        let c = matmul_quant(&x, &qm);
        assert!(c.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn env_override_wins() {
        let _guard = tests_force_quant();
        assert!(quant_enabled());
        set_quant(Some(false));
        assert!(!quant_enabled());
        set_quant(Some(true));
        assert!(quant_enabled());
    }
}
