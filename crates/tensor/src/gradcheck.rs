//! Finite-difference gradient verification.
//!
//! Every op's backward rule is validated by comparing the analytic gradient
//! against a central finite difference of the (re-run) forward pass. With
//! `f32` arithmetic a perturbation around `1e-2` and a mixed
//! absolute/relative tolerance around `2e-2` is the reliable regime.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Configuration for [`GradCheck::check_gradients`].
#[derive(Debug, Clone, Copy)]
pub struct GradCheck {
    /// Central-difference step size.
    pub eps: f32,
    /// Allowed deviation: `|a - n| <= tol * max(1, |a|, |n|)`.
    pub tol: f32,
}

impl Default for GradCheck {
    fn default() -> Self {
        Self { eps: 1e-2, tol: 2e-2 }
    }
}

impl GradCheck {
    /// Verify the gradient of a scalar function of `inputs`.
    ///
    /// `build` receives a fresh [`Graph`] plus one gradient-requiring leaf per
    /// input tensor and must return the scalar loss node. The function is
    /// rebuilt for every perturbation, so it must be deterministic.
    ///
    /// Returns `Err` with a description of the first mismatch found.
    pub fn check_gradients(
        &self,
        inputs: &[Tensor],
        build: impl Fn(&mut Graph, &[Var]) -> Var,
    ) -> Result<(), String> {
        // Analytic gradients.
        let mut g = Graph::new();
        let vars: Vec<Var> = inputs.iter().map(|t| g.input_with_grad(t.clone())).collect();
        let loss = build(&mut g, &vars);
        if g.value(loss).shape() != (1, 1) {
            return Err(format!("loss is not scalar: {:?}", g.value(loss).shape()));
        }
        g.backward(loss);
        let analytic: Vec<Tensor> = vars
            .iter()
            .zip(inputs.iter())
            .map(|(&v, t)| {
                g.grad(v)
                    .cloned()
                    .unwrap_or_else(|| Tensor::zeros(t.rows(), t.cols()))
            })
            .collect();

        let eval = |perturbed: &[Tensor]| -> f64 {
            let mut g = Graph::new();
            let vars: Vec<Var> =
                perturbed.iter().map(|t| g.input_with_grad(t.clone())).collect();
            let loss = build(&mut g, &vars);
            g.value(loss).item() as f64
        };

        for (idx, input) in inputs.iter().enumerate() {
            for pos in 0..input.len() {
                let mut plus: Vec<Tensor> = inputs.to_vec();
                plus[idx].data_mut()[pos] += self.eps;
                let mut minus: Vec<Tensor> = inputs.to_vec();
                minus[idx].data_mut()[pos] -= self.eps;
                let numeric = ((eval(&plus) - eval(&minus)) / (2.0 * self.eps as f64)) as f32;
                let a = analytic[idx].data()[pos];
                let scale = 1.0f32.max(a.abs()).max(numeric.abs());
                if (a - numeric).abs() > self.tol * scale {
                    return Err(format!(
                        "gradient mismatch input#{idx} elem#{pos}: analytic {a:.6} vs numeric {numeric:.6}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Convenience wrapper with default settings; panics on mismatch.
pub fn assert_gradients(inputs: &[Tensor], build: impl Fn(&mut Graph, &[Var]) -> Var) {
    GradCheck::default()
        .check_gradients(inputs, build)
        .unwrap_or_else(|e| panic!("{e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_correct_gradient() {
        let x = Tensor::from_vec(2, 2, vec![0.3, -0.5, 0.8, 0.1]);
        assert_gradients(&[x], |g, vars| {
            let s = g.sigmoid(vars[0]);
            g.mean_all(s)
        });
    }

    #[test]
    fn rejects_wrong_gradient() {
        // exp forward with a deliberately wrong surrogate: use ln's backward by
        // comparing exp's analytic grad against the numeric grad of a shifted
        // function. Simplest: check that a non-deterministic-ish construction
        // is caught — here we fake it by comparing f(x)=x^2 analytic against
        // numeric of x^2 + x (different builds can't be expressed through this
        // API), so instead verify the error path via a non-scalar loss.
        let x = Tensor::zeros(2, 2);
        let err = GradCheck::default().check_gradients(&[x], |g, vars| g.relu(vars[0]));
        assert!(err.is_err());
    }
}
