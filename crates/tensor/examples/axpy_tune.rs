//! Per-length `axpy` cost, scalar-vs-SIMD — the measurement behind
//! `simd::WIDE_MIN_LEN`.
//!
//! `BASM_SIMD=0` runs the inlined scalar loop (which LLVM auto-vectorizes
//! with unrolling); `BASM_SIMD=1` dispatches to the explicit wide backend
//! once a slice crosses the threshold. The crossover printed here is where
//! the AVX call boundary (`#[target_feature]` functions cannot inline into
//! SSE-baseline callers) is paid for by the wider lanes. Note this
//! standalone crossover is *optimistic* — inside real kernels the boundary
//! costs more (see `serve_shapes` and the `WIDE_MIN_LEN` doc), which is why
//! the shipped threshold sits above the break-even printed here. Run with
//! `cargo run --release -p basm-tensor --example axpy_tune`.

use basm_tensor::simd;
use std::time::Instant;

fn main() {
    println!("lanes detected: {}", simd::detected_lanes());
    for &n in &[16usize, 32, 48, 64, 80, 96, 128, 160, 200, 256, 384, 512, 1024] {
        let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.3).collect();
        let mut acc = vec![0.5f32; n];
        let reps = 40_000_000 / n.max(1);
        let mut best = [f64::MAX; 2];
        // Trial 0 is warmup; keep the best of the rest per mode, interleaved
        // so host-speed drift hits both arms equally.
        for trial in 0..5 {
            for (mi, on) in [false, true].into_iter().enumerate() {
                simd::set_simd(Some(on));
                let t = Instant::now();
                for r in 0..reps {
                    // Vary `a` so the loop cannot be hoisted.
                    simd::axpy(&mut acc, &x, 1.0 + (r & 1) as f32 * 1e-9);
                }
                let el = t.elapsed().as_secs_f64();
                if trial > 0 {
                    best[mi] = best[mi].min(el);
                }
                std::hint::black_box(&acc);
            }
        }
        simd::set_simd(None);
        println!(
            "n={n:5}  off={:8.1}ms  on={:8.1}ms  on-speedup={:.3}",
            best[0] * 1e3,
            best[1] * 1e3,
            best[0] / best[1]
        );
    }
}
