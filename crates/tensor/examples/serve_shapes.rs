//! Matmul-context SIMD cost at the serve path's actual shapes.
//!
//! `axpy_tune` measures the standalone kernel crossover behind
//! `simd::WIDE_MIN_LEN`; this example measures the same decision *inside*
//! `linalg::matmul`, at the shapes the BASM serve path actually runs (tower
//! layers `[cands,150]→64→32→1`, attention projections at width 32). It is
//! the regression probe that caught the per-call dispatch overhead: shapes
//! whose slices all route to the scalar kernel must print ≈1.0, because both
//! modes then execute identical machine code — any systematic deficit there
//! is dispatch cost, not lane cost. Run with
//! `cargo run --release -p basm-tensor --example serve_shapes`.

use basm_tensor::{linalg, simd, Prng};
use std::time::Instant;

fn main() {
    // (m, k, n): serve tower layers at 30 candidates, attention-sized blocks,
    // and one wide-output shape where AVX should clearly win.
    let shapes = [
        (30usize, 150usize, 64usize),
        (30, 64, 32),
        (30, 32, 1),
        (30, 48, 32),
        (50, 32, 32),
        (30, 150, 128),
    ];
    for &(m, k, n) in &shapes {
        let mut rng = Prng::seeded(1);
        let a = rng.randn(m, k, 1.0);
        let b = rng.randn(k, n, 1.0);
        let reps = 20_000_000 / (m * k * n).max(1);
        let mut best = [f64::MAX; 2];
        // Trial 0 is warmup; keep the best of the rest per mode, interleaved
        // so host-speed drift hits both arms equally.
        for trial in 0..5 {
            for (mi, on) in [false, true].into_iter().enumerate() {
                simd::set_simd(Some(on));
                let t = Instant::now();
                for _ in 0..reps {
                    std::hint::black_box(linalg::matmul(&a, &b));
                }
                let el = t.elapsed().as_secs_f64();
                if trial > 0 {
                    best[mi] = best[mi].min(el);
                }
            }
        }
        simd::set_simd(None);
        println!(
            "[{m},{k}]x[{k},{n}] reps={reps}  off={:7.1}ms on={:7.1}ms  on-speedup={:.3}",
            best[0] * 1e3,
            best[1] * 1e3,
            best[0] / best[1]
        );
    }
}
