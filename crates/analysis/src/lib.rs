//! # basm-analysis
//!
//! Embedding analysis behind the paper's visualization figures:
//!
//! * exact **t-SNE** with perplexity calibration (Fig. 10/11),
//! * **PCA** pre-reduction,
//! * **silhouette score** — the quantitative version of "more convergent
//!   within the class, more dispersed among the classes",
//! * text **heatmaps / scatter plots / bar charts** standing in for the
//!   paper's figure panels, plus CSV output for real plotting.

pub mod pca;
pub mod reliability;
pub mod render;
pub mod silhouette;
pub mod tsne;

pub use pca::{pca, Points};
pub use reliability::{expected_calibration_error, reliability_diagram, CalibrationBucket};
pub use render::{dual_bars, heatmap, scatter, to_csv};
pub use silhouette::silhouette;
pub use tsne::{tsne, TsneConfig};
