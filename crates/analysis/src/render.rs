//! Text rendering: heatmaps (Fig. 8/9), ASCII scatter plots (Fig. 10/11) and
//! bar charts (Fig. 2/6/12) — the terminal stands in for the paper's figure
//! panels, and CSV escapes hatch for real plotting.

use crate::pca::Points;

/// Render a labeled matrix as a text heatmap with the actual values.
pub fn heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(values.len(), row_labels.len(), "heatmap: row count mismatch");
    let width = col_labels.iter().map(|l| l.len()).max().unwrap_or(6).max(6);
    let row_w = row_labels.iter().map(|l| l.len()).max().unwrap_or(4);
    let lo = values.iter().flatten().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
    let shades = [' ', '░', '▒', '▓', '█'];
    let mut out = format!("{title}\n{:row_w$} ", "");
    for c in col_labels {
        out.push_str(&format!("{c:>width$} "));
    }
    out.push('\n');
    for (r, row) in values.iter().enumerate() {
        assert_eq!(row.len(), col_labels.len(), "heatmap: col count mismatch");
        out.push_str(&format!("{:row_w$} ", row_labels[r]));
        for &v in row {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            let shade = shades[((t * 4.0).round() as usize).min(4)];
            out.push_str(&format!("{shade}{v:>w$.3} ", w = width - 1));
        }
        out.push('\n');
    }
    out
}

/// Render labeled 2-D points as an ASCII scatter plot; each cluster gets its
/// own glyph.
pub fn scatter(title: &str, points: &Points, labels: &[u32], rows: usize, cols: usize) -> String {
    assert_eq!(points.dim(), 2, "scatter: need 2-D points");
    assert_eq!(points.len(), labels.len());
    let glyphs = ['o', 'x', '+', '*', '#', '@', '%', '&'];
    let mut grid = vec![vec![' '; cols]; rows];
    if !points.is_empty() {
        let (mut x0, mut x1) = (f32::MAX, f32::MIN);
        let (mut y0, mut y1) = (f32::MAX, f32::MIN);
        for i in 0..points.len() {
            let p = points.row(i);
            x0 = x0.min(p[0]);
            x1 = x1.max(p[0]);
            y0 = y0.min(p[1]);
            y1 = y1.max(p[1]);
        }
        let sx = if x1 > x0 { (cols - 1) as f32 / (x1 - x0) } else { 0.0 };
        let sy = if y1 > y0 { (rows - 1) as f32 / (y1 - y0) } else { 0.0 };
        for i in 0..points.len() {
            let p = points.row(i);
            let c = ((p[0] - x0) * sx) as usize;
            let r = ((p[1] - y0) * sy) as usize;
            grid[rows - 1 - r.min(rows - 1)][c.min(cols - 1)] =
                glyphs[labels[i] as usize % glyphs.len()];
        }
    }
    let mut out = format!("{title}\n");
    out.push_str(&format!("+{}+\n", "-".repeat(cols)));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!("+{}+\n", "-".repeat(cols)));
    out
}

/// Render a two-series bar chart (e.g. exposures and CTR per hour).
pub fn dual_bars(
    title: &str,
    labels: &[String],
    series_a: (&str, &[f64]),
    series_b: (&str, &[f64]),
) -> String {
    assert_eq!(labels.len(), series_a.1.len());
    assert_eq!(labels.len(), series_b.1.len());
    let max_a = series_a.1.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let max_b = series_b.1.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let bar_w = 30usize;
    let lab_w = labels.iter().map(|l| l.len()).max().unwrap_or(4);
    let mut out = format!(
        "{title}\n{:lab_w$}  {:<bar_w$}  {:<bar_w$}\n",
        "", series_a.0, series_b.0
    );
    for (i, l) in labels.iter().enumerate() {
        let wa = ((series_a.1[i] / max_a) * bar_w as f64).round() as usize;
        let wb = ((series_b.1[i] / max_b) * bar_w as f64).round() as usize;
        out.push_str(&format!(
            "{l:>lab_w$}  {:<bar_w$}  {:<bar_w$}  {:>10.4} | {:.4}\n",
            "#".repeat(wa.min(bar_w)),
            "*".repeat(wb.min(bar_w)),
            series_a.1[i],
            series_b.1[i],
        ));
    }
    out
}

/// Serialize a matrix as CSV with headers.
pub fn to_csv(row_labels: &[String], col_labels: &[String], values: &[Vec<f64>]) -> String {
    let mut out = String::from("label");
    for c in col_labels {
        out.push(',');
        out.push_str(c);
    }
    out.push('\n');
    for (r, row) in values.iter().enumerate() {
        out.push_str(&row_labels[r]);
        for v in row {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_renders_all_cells() {
        let out = heatmap(
            "test",
            &["a".into(), "b".into()],
            &["x".into(), "y".into(), "z".into()],
            &[vec![0.0, 0.5, 1.0], vec![1.0, 0.5, 0.0]],
        );
        assert!(out.contains("test"));
        assert!(out.contains('█'));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn scatter_places_points() {
        let p = Points::new(vec![0.0, 0.0, 10.0, 10.0], 2, 2);
        let out = scatter("s", &p, &[0, 1], 8, 16);
        assert!(out.contains('o'));
        assert!(out.contains('x'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = to_csv(
            &["r1".into()],
            &["c1".into(), "c2".into()],
            &[vec![1.5, 2.5]],
        );
        assert_eq!(csv, "label,c1,c2\nr1,1.5,2.5\n");
    }

    #[test]
    fn dual_bars_scales_to_max() {
        let out = dual_bars(
            "d",
            &["x".into(), "y".into()],
            ("exp", &[10.0, 5.0]),
            ("ctr", &[0.01, 0.02]),
        );
        assert!(out.contains("##"));
        assert!(out.contains('*'));
    }
}
