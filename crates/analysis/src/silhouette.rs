//! Silhouette score: quantifies the cluster separation the paper's t-SNE
//! figures (Fig. 10/11) show qualitatively — "more convergent within the
//! class and more dispersed among the classes" becomes a number.

use crate::pca::Points;

/// Mean silhouette coefficient of `points` under `labels` (cluster per
/// point). Returns `None` when fewer than two distinct clusters have points.
///
/// For each point: `s = (b - a) / max(a, b)` with `a` the mean intra-cluster
/// distance and `b` the smallest mean distance to another cluster. Range
/// `[-1, 1]`; higher = better separated.
pub fn silhouette(points: &Points, labels: &[u32]) -> Option<f64> {
    let n = points.len();
    assert_eq!(labels.len(), n, "silhouette: label count mismatch");
    let mut clusters: Vec<u32> = labels.to_vec();
    clusters.sort_unstable();
    clusters.dedup();
    if clusters.len() < 2 {
        return None;
    }

    let dist = |i: usize, j: usize| -> f64 {
        points
            .row(i)
            .iter()
            .zip(points.row(j).iter())
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    };

    let mut total = 0.0f64;
    let mut counted = 0usize;
    for i in 0..n {
        // Mean distance to every cluster.
        let mut sums: Vec<f64> = vec![0.0; clusters.len()];
        let mut counts: Vec<usize> = vec![0; clusters.len()];
        for j in 0..n {
            if i == j {
                continue;
            }
            let c = clusters.iter().position(|&c| c == labels[j]).expect("known cluster");
            sums[c] += dist(i, j);
            counts[c] += 1;
        }
        let own = clusters.iter().position(|&c| c == labels[i]).expect("known cluster");
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined for the point
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..clusters.len())
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        total += (b - a) / a.max(b);
        counted += 1;
    }
    (counted > 0).then(|| total / counted as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(offset: f32, n: usize) -> Vec<f32> {
        (0..n)
            .flat_map(|i| vec![offset + (i as f32 * 0.01), offset - (i as f32 * 0.01)])
            .collect()
    }

    #[test]
    fn separated_blobs_score_high() {
        let mut data = blob(0.0, 20);
        data.extend(blob(50.0, 20));
        let labels: Vec<u32> = (0..40).map(|i| (i >= 20) as u32).collect();
        let s = silhouette(&Points::new(data, 40, 2), &labels).unwrap();
        assert!(s > 0.9, "well-separated blobs: {s}");
    }

    #[test]
    fn shuffled_labels_score_low() {
        let mut data = blob(0.0, 20);
        data.extend(blob(50.0, 20));
        // Alternate labels regardless of position.
        let labels: Vec<u32> = (0..40).map(|i| (i % 2) as u32).collect();
        let s = silhouette(&Points::new(data, 40, 2), &labels).unwrap();
        assert!(s < 0.2, "mixed labels: {s}");
    }

    #[test]
    fn single_cluster_is_none() {
        let data = blob(0.0, 10);
        assert_eq!(silhouette(&Points::new(data, 10, 2), &[1; 10]), None);
    }

    #[test]
    fn better_separation_scores_higher() {
        let mk = |gap: f32| {
            let mut d = blob(0.0, 15);
            d.extend(blob(gap, 15));
            let labels: Vec<u32> = (0..30).map(|i| (i >= 15) as u32).collect();
            silhouette(&Points::new(d, 30, 2), &labels).unwrap()
        };
        assert!(mk(20.0) > mk(1.0));
    }
}
