//! Reliability diagram (calibration curve): predicted-probability buckets vs
//! empirical click rate — the debias story (§V-D) made measurable.

use serde::{Deserialize, Serialize};

/// One calibration bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationBucket {
    /// Bucket lower edge (predicted probability).
    pub lo: f64,
    /// Bucket upper edge.
    pub hi: f64,
    /// Mean predicted probability inside the bucket.
    pub mean_predicted: f64,
    /// Empirical positive rate inside the bucket.
    pub empirical: f64,
    /// Samples in the bucket.
    pub count: usize,
}

/// Build an equal-width reliability diagram with `n_buckets` over `[0, 1]`.
/// Empty buckets are omitted.
pub fn reliability_diagram(
    probs: &[f32],
    labels: &[f32],
    n_buckets: usize,
) -> Vec<CalibrationBucket> {
    assert_eq!(probs.len(), labels.len());
    assert!(n_buckets >= 1);
    let mut pred_sum = vec![0.0f64; n_buckets];
    let mut label_sum = vec![0.0f64; n_buckets];
    let mut count = vec![0usize; n_buckets];
    for (&p, &l) in probs.iter().zip(labels.iter()) {
        let b = ((p as f64 * n_buckets as f64) as usize).min(n_buckets - 1);
        pred_sum[b] += p as f64;
        label_sum[b] += l as f64;
        count[b] += 1;
    }
    (0..n_buckets)
        .filter(|&b| count[b] > 0)
        .map(|b| CalibrationBucket {
            lo: b as f64 / n_buckets as f64,
            hi: (b + 1) as f64 / n_buckets as f64,
            mean_predicted: pred_sum[b] / count[b] as f64,
            empirical: label_sum[b] / count[b] as f64,
            count: count[b],
        })
        .collect()
}

/// Expected Calibration Error: count-weighted mean |predicted - empirical|.
pub fn expected_calibration_error(probs: &[f32], labels: &[f32], n_buckets: usize) -> f64 {
    let buckets = reliability_diagram(probs, labels, n_buckets);
    let total: usize = buckets.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    buckets
        .iter()
        .map(|b| (b.count as f64 / total as f64) * (b.mean_predicted - b.empirical).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_has_tiny_ece() {
        // Predictions equal to long-run frequencies in each bucket.
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..1000 {
            let p = 0.3f32;
            probs.push(p);
            labels.push(f32::from(i % 10 < 3)); // 30% positives
        }
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!(ece < 0.01, "{ece}");
    }

    #[test]
    fn overconfident_predictions_have_large_ece() {
        let probs = vec![0.95f32; 200];
        let labels: Vec<f32> = (0..200).map(|i| f32::from(i % 10 == 0)).collect(); // 10%
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!(ece > 0.7, "{ece}");
    }

    #[test]
    fn buckets_partition_and_count() {
        let probs = vec![0.05f32, 0.15, 0.95, 0.97];
        let labels = vec![0.0f32, 1.0, 1.0, 1.0];
        let d = reliability_diagram(&probs, &labels, 10);
        let total: usize = d.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        assert!(d.iter().all(|b| b.lo < b.hi));
        // Highest bucket holds the two 0.9x predictions.
        assert_eq!(d.last().unwrap().count, 2);
    }

    #[test]
    fn boundary_probability_goes_to_last_bucket() {
        let d = reliability_diagram(&[1.0], &[1.0], 5);
        assert_eq!(d.len(), 1);
        assert!((d[0].hi - 1.0).abs() < 1e-12);
    }
}
