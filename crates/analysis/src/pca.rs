//! Principal component analysis via power iteration with deflation.
//!
//! Used to pre-reduce embeddings before the exact t-SNE (the standard
//! pipeline) and as a cheap standalone projection.

/// Row-major data matrix wrapper for the analysis crate.
#[derive(Debug, Clone)]
pub struct Points {
    data: Vec<f32>,
    n: usize,
    d: usize,
}

impl Points {
    /// Wrap `n x d` row-major data.
    pub fn new(data: Vec<f32>, n: usize, d: usize) -> Self {
        assert_eq!(data.len(), n * d, "Points: buffer size mismatch");
        Self { data, n, d }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The `i`-th point.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.d..(i + 1) * self.d]
    }
}

/// Project `points` onto the top `k` principal components.
///
/// Power iteration with Gram-Schmidt deflation on the (implicit) covariance;
/// adequate for visualization purposes.
pub fn pca(points: &Points, k: usize, iterations: usize) -> Points {
    let (n, d) = (points.len(), points.dim());
    assert!(k >= 1 && k <= d, "pca: k {k} out of 1..={d}");
    if n == 0 {
        return Points::new(Vec::new(), 0, k);
    }
    // Center.
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for (m, &x) in mean.iter_mut().zip(points.row(i).iter()) {
            *m += x as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let centered: Vec<f32> = (0..n)
        .flat_map(|i| {
            points
                .row(i)
                .iter()
                .zip(mean.iter())
                .map(|(&x, &m)| x - m as f32)
                .collect::<Vec<_>>()
        })
        .collect();
    let x = Points::new(centered, n, d);

    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    let mut seed = 0x9E37u64;
    for _ in 0..k {
        // Deterministic pseudo-random start vector.
        let mut v: Vec<f32> = (0..d)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((seed >> 33) as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        normalize(&mut v);
        for _ in 0..iterations {
            // w = Covariance * v  (computed as Xᵀ (X v) / n).
            let mut xv = vec![0.0f32; n];
            for i in 0..n {
                xv[i] = dot(x.row(i), &v);
            }
            let mut w = vec![0.0f32; d];
            for i in 0..n {
                let s = xv[i];
                for (wj, &xj) in w.iter_mut().zip(x.row(i).iter()) {
                    *wj += s * xj;
                }
            }
            // Deflate previously found components.
            for c in &components {
                let proj = dot(&w, c);
                for (wj, &cj) in w.iter_mut().zip(c.iter()) {
                    *wj -= proj * cj;
                }
            }
            if normalize(&mut w) < 1e-12 {
                break;
            }
            v = w;
        }
        components.push(v);
    }

    let mut out = Vec::with_capacity(n * k);
    for i in 0..n {
        for c in &components {
            out.push(dot(x.row(i), c));
        }
    }
    Points::new(out, n, k)
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along (1, 1, 0) with small noise elsewhere.
        let n = 200;
        let mut data = Vec::new();
        for i in 0..n {
            let t = (i as f32 / n as f32 - 0.5) * 10.0;
            data.extend_from_slice(&[t, t + 0.01 * (i as f32).sin(), 0.02 * (i as f32).cos()]);
        }
        let p = pca(&Points::new(data, n, 3), 1, 50);
        assert_eq!(p.dim(), 1);
        // The projection should span the full range ~ sqrt(2)*10.
        let min = (0..n).map(|i| p.row(i)[0]).fold(f32::MAX, f32::min);
        let max = (0..n).map(|i| p.row(i)[0]).fold(f32::MIN, f32::max);
        assert!((max - min) > 12.0, "spread {}", max - min);
    }

    #[test]
    fn components_capture_more_variance_in_order() {
        // Anisotropic blob: variance 9 along axis 0, 1 along axis 1, 0.01 axis 2.
        let mut data = Vec::new();
        let mut s = 1u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        let n = 500;
        for _ in 0..n {
            data.extend_from_slice(&[6.0 * rnd(), 2.0 * rnd(), 0.2 * rnd()]);
        }
        let p = pca(&Points::new(data, n, 3), 2, 60);
        let var = |k: usize| -> f32 {
            let m: f32 = (0..n).map(|i| p.row(i)[k]).sum::<f32>() / n as f32;
            (0..n).map(|i| (p.row(i)[k] - m).powi(2)).sum::<f32>() / n as f32
        };
        assert!(var(0) > var(1), "{} vs {}", var(0), var(1));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn k_larger_than_dim_panics() {
        pca(&Points::new(vec![0.0; 6], 2, 3), 4, 10);
    }
}
