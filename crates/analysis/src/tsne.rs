//! Exact t-SNE (van der Maaten & Hinton 2008) for the Fig. 10/11 embedding
//! visualizations.
//!
//! O(n²) pairwise affinities with per-point perplexity calibration, gradient
//! descent with momentum and early exaggeration. Intended for the paper's
//! sample sizes (a few thousand points).

use crate::pca::{pca, Points};
use basm_tensor::Prng;

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of iterations.
    pub exaggeration: f32,
    /// PCA pre-reduction dimensionality (0 = skip).
    pub pca_dims: usize,
    /// Seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration: 6.0,
            pca_dims: 16,
            seed: 42,
        }
    }
}

/// Embed `points` into 2-D. Returns an `n x 2` [`Points`].
pub fn tsne(points: &Points, cfg: &TsneConfig) -> Points {
    let n = points.len();
    if n == 0 {
        return Points::new(Vec::new(), 0, 2);
    }
    assert!(n >= 4, "tsne: need at least 4 points");
    let reduced;
    let x = if cfg.pca_dims > 0 && cfg.pca_dims < points.dim() {
        reduced = pca(points, cfg.pca_dims, 40);
        &reduced
    } else {
        points
    };

    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = x
                .row(i)
                .iter()
                .zip(x.row(j).iter())
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Row-wise precision calibration to the target perplexity.
    let target_entropy = cfg.perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let mut beta = 1.0f64;
        let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
        for _ in 0..50 {
            let (entropy, probs) = row_affinities(row, i, beta);
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                p[i * n..(i + 1) * n].copy_from_slice(&probs);
                break;
            }
            if diff > 0.0 {
                lo = beta;
                beta = if hi.is_finite() { (beta + hi) / 2.0 } else { beta * 2.0 };
            } else {
                hi = beta;
                beta = if lo.is_finite() { (beta + lo) / 2.0 } else { beta / 2.0 };
            }
            p[i * n..(i + 1) * n].copy_from_slice(&probs);
        }
    }
    // Symmetrize and normalize.
    let mut sym = vec![0.0f64; n * n];
    let mut total = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let v = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
            sym[i * n + j] = v;
            total += v;
        }
    }
    for v in &mut sym {
        *v = (*v / total).max(1e-12);
    }

    // Gradient descent on the 2-D layout.
    let mut rng = Prng::seeded(cfg.seed);
    let mut y: Vec<f32> = (0..2 * n).map(|_| rng.normal() * 1e-2).collect();
    let mut velocity = vec![0.0f32; 2 * n];
    let exag_until = cfg.iterations / 4;
    let mut q = vec![0.0f64; n * n];
    for iter in 0..cfg.iterations {
        let exaggeration = if iter < exag_until { cfg.exaggeration as f64 } else { 1.0 };
        // Student-t affinities in the embedding.
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = (y[2 * i] - y[2 * j]) as f64;
                let dy1 = (y[2 * i + 1] - y[2 * j + 1]) as f64;
                let w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        let momentum = if iter < exag_until { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut g0 = 0.0f64;
            let mut g1 = 0.0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let pij = sym[i * n + j] * exaggeration;
                let qij = (w / qsum).max(1e-12);
                let mult = 4.0 * (pij - qij) * w;
                g0 += mult * (y[2 * i] - y[2 * j]) as f64;
                g1 += mult * (y[2 * i + 1] - y[2 * j + 1]) as f64;
            }
            velocity[2 * i] = momentum * velocity[2 * i] - cfg.learning_rate * g0 as f32;
            velocity[2 * i + 1] = momentum * velocity[2 * i + 1] - cfg.learning_rate * g1 as f32;
        }
        for (yi, vi) in y.iter_mut().zip(velocity.iter()) {
            *yi += vi;
        }
    }
    Points::new(y, n, 2)
}

/// Conditional affinities of row `i` at precision `beta`; returns the Shannon
/// entropy and the probabilities.
fn row_affinities(d2_row: &[f64], i: usize, beta: f64) -> (f64, Vec<f64>) {
    let n = d2_row.len();
    let mut probs = vec![0.0f64; n];
    let mut sum = 0.0f64;
    for (j, (&d, p)) in d2_row.iter().zip(probs.iter_mut()).enumerate() {
        if j == i {
            continue;
        }
        *p = (-beta * d).exp();
        sum += *p;
    }
    if sum <= 0.0 {
        return (0.0, probs);
    }
    let mut entropy = 0.0f64;
    for (j, p) in probs.iter_mut().enumerate() {
        if j == i {
            continue;
        }
        *p /= sum;
        if *p > 1e-300 {
            entropy -= *p * p.ln();
        }
    }
    (entropy, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs must stay separated in 2-D.
    #[test]
    fn separates_two_blobs() {
        let mut rng = Prng::seeded(5);
        let n_per = 30;
        let mut data = Vec::new();
        for b in 0..2 {
            let offset = b as f32 * 20.0;
            for _ in 0..n_per {
                for _ in 0..5 {
                    data.push(offset + rng.normal() * 0.5);
                }
            }
        }
        let cfg = TsneConfig { perplexity: 10.0, iterations: 250, pca_dims: 0, ..Default::default() };
        let out = tsne(&Points::new(data, 2 * n_per, 5), &cfg);

        // Centroid distance should exceed intra-blob spread.
        let centroid = |range: std::ops::Range<usize>| -> (f32, f32) {
            let mut c = (0.0, 0.0);
            for i in range.clone() {
                c.0 += out.row(i)[0];
                c.1 += out.row(i)[1];
            }
            (c.0 / range.len() as f32, c.1 / range.len() as f32)
        };
        let c0 = centroid(0..n_per);
        let c1 = centroid(n_per..2 * n_per);
        let between = ((c0.0 - c1.0).powi(2) + (c0.1 - c1.1).powi(2)).sqrt();
        let spread = |range: std::ops::Range<usize>, c: (f32, f32)| -> f32 {
            let mut s = 0.0;
            for i in range.clone() {
                s += ((out.row(i)[0] - c.0).powi(2) + (out.row(i)[1] - c.1).powi(2)).sqrt();
            }
            s / range.len() as f32
        };
        let s0 = spread(0..n_per, c0);
        let s1 = spread(n_per..2 * n_per, c1);
        assert!(
            between > 2.0 * (s0 + s1) / 2.0,
            "blobs overlap: between {between}, spreads {s0}/{s1}"
        );
    }

    #[test]
    fn output_is_finite_and_shaped() {
        let mut rng = Prng::seeded(6);
        let data: Vec<f32> = (0..40 * 8).map(|_| rng.normal()).collect();
        let cfg = TsneConfig { iterations: 60, ..Default::default() };
        let out = tsne(&Points::new(data, 40, 8), &cfg);
        assert_eq!(out.len(), 40);
        assert_eq!(out.dim(), 2);
        for i in 0..40 {
            assert!(out.row(i).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out = tsne(&Points::new(Vec::new(), 0, 4), &TsneConfig::default());
        assert!(out.is_empty());
    }
}
