//! Property tests: the generator must produce a structurally valid dataset
//! for *any* small configuration, not just the shipped presets.

use basm_data::{generate_dataset, WorldConfig, DENSE_FEATURES};
use proptest::prelude::*;

fn small_config() -> impl Strategy<Value = WorldConfig> {
    (
        20usize..80,   // users
        20usize..60,   // items
        1usize..5,     // cities
        2usize..8,     // categories
        2usize..30,    // geo grid selector (mapped below)
        1u64..1000,    // seed
        2usize..6,     // seq len
        40usize..120,  // sessions/day
        2usize..6,     // candidates per session
    )
        .prop_map(
            |(users, items, cities, cats, grid_sel, seed, seq, sessions, k)| WorldConfig {
                name: "prop".into(),
                seed,
                n_users: users,
                n_items: items,
                n_cities: cities,
                n_categories: cats,
                n_brands: 5,
                geo_grid: 2 + grid_sel % 4,
                latent_dim: 3,
                seq_len: seq,
                history_bootstrap: 3,
                warmup_days: 1,
                train_days: 1,
                test_days: 1,
                sessions_per_day: sessions,
                candidates_per_session: k,
                base_logit: -2.0,
                label_noise: 0.3,
                st_strength: 1.0,
                reported_features: 10,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_datasets_are_structurally_valid(cfg in small_config()) {
        let data = generate_dataset(&cfg);
        let ds = &data.dataset;

        // Volume: exact when every city pool is deep enough, otherwise an
        // upper bound (tiny cities can expose fewer than k candidates), and
        // never less than one exposure per session.
        prop_assert!(ds.len() <= cfg.expected_impressions());
        prop_assert!(ds.len() >= cfg.recorded_days() * cfg.sessions_per_day);

        // Column lengths are consistent.
        prop_assert_eq!(ds.dense.len(), ds.len() * DENSE_FEATURES);
        prop_assert_eq!(ds.seq_item.len(), ds.len() * cfg.seq_len);
        prop_assert_eq!(ds.seq_used.len(), ds.len());

        for i in 0..ds.len() {
            // Ids in range.
            prop_assert!((ds.user[i] as usize) < cfg.n_users);
            prop_assert!((ds.item[i] as usize) < cfg.n_items);
            prop_assert!((ds.city[i] as usize) < cfg.n_cities);
            prop_assert!((ds.category[i] as usize) < cfg.n_categories);
            prop_assert!(ds.hour[i] < 24);
            prop_assert!(ds.tp[i] < 5);
            prop_assert!((ds.position[i] as usize) < cfg.candidates_per_session);
            prop_assert!((ds.geohash[i] as usize) < cfg.n_geohash());
            prop_assert!(ds.label[i] == 0.0 || ds.label[i] == 1.0);
            prop_assert!((0.0..=1.0).contains(&ds.true_prob[i]));

            // Sequence padding is a suffix, consistent with seq_used.
            let t = cfg.seq_len;
            let used = ds.seq_used[i] as usize;
            prop_assert!(used <= t);
            for k in 0..t {
                let valid = ds.seq_item[i * t + k] != 0;
                prop_assert_eq!(valid, k < used, "padding must be a suffix");
                if valid {
                    // Sequence ids are +1 shifted: within vocab after -1.
                    prop_assert!((ds.seq_item[i * t + k] as usize) <= cfg.n_items);
                    prop_assert!((ds.seq_cat[i * t + k] as usize) <= cfg.n_categories);
                }
            }
        }
    }

    #[test]
    fn batches_are_well_formed_for_any_config(cfg in small_config()) {
        let data = generate_dataset(&cfg);
        let ds = &data.dataset;
        let take = ds.len().min(9);
        let batch = ds.batch(&(0..take).collect::<Vec<_>>());
        prop_assert_eq!(batch.size, take);
        prop_assert_eq!(batch.labels.shape(), (take, 1));
        prop_assert_eq!(batch.mask.shape(), (take, cfg.seq_len));
        prop_assert!(batch.user_ids.iter().all(|&u| u >= 1));
        prop_assert!(batch.dense.all_finite());
        // st_mask ⊆ mask everywhere.
        for (s, m) in batch.st_mask.data().iter().zip(batch.mask.data().iter()) {
            prop_assert!(s <= m);
        }
    }

    #[test]
    fn same_seed_same_dataset(cfg in small_config()) {
        let a = generate_dataset(&cfg).dataset;
        let b = generate_dataset(&cfg).dataset;
        prop_assert_eq!(a.label, b.label);
        prop_assert_eq!(a.item, b.item);
        prop_assert_eq!(a.seq_item, b.seq_item);
    }
}
