//! Dataset statistics (Table III) and spatiotemporal distribution summaries
//! (Fig. 2 and Fig. 6).

use crate::dataset::Dataset;
use crate::schema::TIME_PERIODS;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The Table III row for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Total number of impressions.
    pub total_size: usize,
    /// Schema feature count (reported, like the paper's 417 / 38).
    pub n_features: usize,
    /// Distinct users appearing in the log.
    pub n_users: usize,
    /// Distinct items appearing in the log.
    pub n_items: usize,
    /// Number of clicks.
    pub n_clicks: usize,
    /// Mean length of the behavior sequences (the paper's "ML").
    pub mean_seq_len: f64,
    /// Overall CTR.
    pub ctr: f64,
}

impl DatasetStats {
    /// Compute the statistics of a dataset.
    pub fn compute(ds: &Dataset) -> Self {
        let users: HashSet<u32> = ds.user.iter().copied().collect();
        let items: HashSet<u32> = ds.item.iter().copied().collect();
        let clicks = ds.label.iter().filter(|&&l| l > 0.5).count();
        let mean_seq_len = if ds.is_empty() {
            0.0
        } else {
            ds.seq_used.iter().map(|&u| u as f64).sum::<f64>() / ds.len() as f64
        };
        Self {
            name: ds.config.name.clone(),
            total_size: ds.len(),
            n_features: ds.config.reported_features,
            n_users: users.len(),
            n_items: items.len(),
            n_clicks: clicks,
            mean_seq_len,
            ctr: ds.ctr(),
        }
    }
}

/// Exposure count and CTR per bucket (hour / city / time-period).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BucketStat {
    /// Bucket label.
    pub label: String,
    /// Number of exposures in the bucket.
    pub exposures: usize,
    /// Number of clicks in the bucket.
    pub clicks: usize,
}

impl BucketStat {
    /// Click-through rate of the bucket.
    pub fn ctr(&self) -> f64 {
        if self.exposures == 0 {
            0.0
        } else {
            self.clicks as f64 / self.exposures as f64
        }
    }
}

/// Exposure/CTR distribution over the 24 hours (Fig. 2a).
pub fn distribution_by_hour(ds: &Dataset) -> Vec<BucketStat> {
    let mut buckets: Vec<BucketStat> = (0..24)
        .map(|h| BucketStat { label: format!("{h:02}h"), ..Default::default() })
        .collect();
    for i in 0..ds.len() {
        let b = &mut buckets[ds.hour[i] as usize];
        b.exposures += 1;
        b.clicks += (ds.label[i] > 0.5) as usize;
    }
    buckets
}

/// Exposure/CTR distribution over cities (Fig. 2b), ordered by city index
/// (traffic-ranked by construction).
pub fn distribution_by_city(ds: &Dataset) -> Vec<BucketStat> {
    let n = ds.config.n_cities;
    let mut buckets: Vec<BucketStat> = (0..n)
        .map(|c| BucketStat { label: format!("city{}", c + 1), ..Default::default() })
        .collect();
    for i in 0..ds.len() {
        let b = &mut buckets[ds.city[i] as usize];
        b.exposures += 1;
        b.clicks += (ds.label[i] > 0.5) as usize;
    }
    buckets
}

/// Exposure/CTR distribution over the five time-periods (Fig. 12 grouping).
pub fn distribution_by_time_period(ds: &Dataset) -> Vec<BucketStat> {
    let mut buckets: Vec<BucketStat> = TIME_PERIODS
        .iter()
        .map(|tp| BucketStat { label: tp.name().to_string(), ..Default::default() })
        .collect();
    for i in 0..ds.len() {
        let b = &mut buckets[ds.tp[i] as usize];
        b.exposures += 1;
        b.clicks += (ds.label[i] > 0.5) as usize;
    }
    buckets
}

/// CTR surface over (city, hour): the spatiotemporal-bias grid of Fig. 6.
/// Returns a `n_cities x 24` matrix of CTRs (NaN-free; empty cells are 0).
pub fn ctr_surface(ds: &Dataset) -> Vec<Vec<f64>> {
    let n = ds.config.n_cities;
    let mut exp = vec![vec![0usize; 24]; n];
    let mut clk = vec![vec![0usize; 24]; n];
    for i in 0..ds.len() {
        let c = ds.city[i] as usize;
        let h = ds.hour[i] as usize;
        exp[c][h] += 1;
        clk[c][h] += (ds.label[i] > 0.5) as usize;
    }
    exp.iter()
        .zip(clk.iter())
        .map(|(erow, crow)| {
            erow.iter()
                .zip(crow.iter())
                .map(|(&e, &c)| if e == 0 { 0.0 } else { c as f64 / e as f64 })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::generate::generate_dataset;

    fn tiny() -> Dataset {
        generate_dataset(&WorldConfig::tiny()).dataset
    }

    #[test]
    fn stats_are_consistent() {
        let ds = tiny();
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.total_size, ds.len());
        assert_eq!(s.n_clicks, ds.label.iter().filter(|&&l| l > 0.5).count());
        assert!(s.n_users <= ds.config.n_users);
        assert!(s.n_items <= ds.config.n_items);
        assert!((s.ctr - ds.ctr()).abs() < 1e-12);
        assert!(s.mean_seq_len >= 0.0 && s.mean_seq_len <= ds.config.seq_len as f64);
    }

    #[test]
    fn hour_distribution_totals_match() {
        let ds = tiny();
        let dist = distribution_by_hour(&ds);
        assert_eq!(dist.len(), 24);
        let total: usize = dist.iter().map(|b| b.exposures).sum();
        assert_eq!(total, ds.len());
        // Meal peaks carry more exposure than deep night.
        assert!(dist[12].exposures > dist[3].exposures);
    }

    #[test]
    fn city_distribution_is_head_heavy() {
        let ds = tiny();
        let dist = distribution_by_city(&ds);
        let total: usize = dist.iter().map(|b| b.exposures).sum();
        assert_eq!(total, ds.len());
        assert!(dist[0].exposures >= dist.last().unwrap().exposures);
    }

    #[test]
    fn ctr_varies_across_time_periods() {
        let ds = tiny();
        let dist = distribution_by_time_period(&ds);
        let ctrs: Vec<f64> = dist.iter().filter(|b| b.exposures > 50).map(BucketStat::ctr).collect();
        assert!(ctrs.len() >= 2);
        let max = ctrs.iter().cloned().fold(0.0, f64::max);
        let min = ctrs.iter().cloned().fold(1.0, f64::min);
        assert!(max > min, "spatiotemporal bias should produce CTR spread");
    }

    #[test]
    fn surface_dimensions() {
        let ds = tiny();
        let surface = ctr_surface(&ds);
        assert_eq!(surface.len(), ds.config.n_cities);
        assert!(surface.iter().all(|row| row.len() == 24));
    }
}
