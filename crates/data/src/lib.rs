//! # basm-data
//!
//! Synthetic spatiotemporal Online-Food-Ordering-Service datasets.
//!
//! The paper evaluates on two inaccessible datasets (the proprietary Ele.me
//! production log and a 177M-row Tianchi dataset). This crate substitutes a
//! **generative world model** whose ground-truth click process has exactly
//! the structure the paper's method exploits: spatiotemporal bias (CTR base
//! rates shifting with city/hour/time-period) and time/space-varying feature
//! importance. See `DESIGN.md` §1 for the substitution argument.
//!
//! ```
//! use basm_data::{WorldConfig, generate_dataset, DatasetStats};
//!
//! let data = generate_dataset(&WorldConfig::tiny());
//! let stats = DatasetStats::compute(&data.dataset);
//! assert!(stats.ctr > 0.0);
//! let batch = data.dataset.batch(&[0, 1, 2]);
//! assert_eq!(batch.size, 3);
//! ```

pub mod config;
pub mod dataset;
pub mod io;
pub mod generate;
pub mod schema;
pub mod stats;
pub mod world;

pub use config::WorldConfig;
pub use dataset::{Batch, Dataset};
pub use generate::{
    append_example, append_example_from_block, generate_dataset, BehaviorEvent, GeneratedData,
    StatCounters, UserBlock,
};
pub use io::{export_tsv, import_tsv, TsvError, TSV_HEADER};
pub use schema::{Field, TimePeriod, DENSE_FEATURES, FIELDS, SEQ_FEATURES, TIME_PERIODS};
pub use stats::{
    ctr_surface, distribution_by_city, distribution_by_hour, distribution_by_time_period,
    BucketStat, DatasetStats,
};
pub use world::{BehaviorSummary, City, Context, ItemProfile, UserProfile, World};
