//! Columnar impression log and model-facing batches.
//!
//! Examples are stored struct-of-arrays to keep memory compact. Id columns
//! for scalar features store **raw entity indices**; behavior-sequence
//! columns store **index + 1 with 0 = padding** so embedding row 0 can stay
//! the frozen pad row. [`Batch`] applies the `+1` shift to scalar ids so
//! every id handed to a model is embedding-ready.

use crate::config::WorldConfig;
use crate::schema::{DENSE_FEATURES, TimePeriod};
use basm_tensor::pool;
use basm_tensor::{Prng, Tensor};

/// Columnar dataset of impressions.
pub struct Dataset {
    /// The generating configuration.
    pub config: WorldConfig,
    /// Click labels (0/1).
    pub label: Vec<f32>,
    /// Ground-truth click probability (analysis only; never a feature).
    pub true_prob: Vec<f32>,
    /// Recorded day index (0-based; `< train_days` → train).
    pub day: Vec<u16>,
    /// Session (request) id for NDCG grouping.
    pub session: Vec<u32>,
    /// Hour of day.
    pub hour: Vec<u8>,
    /// Time-period index.
    pub tp: Vec<u8>,
    /// City index.
    pub city: Vec<u16>,
    /// Global geohash cell id.
    pub geohash: Vec<u32>,
    /// Exposure position (0-based).
    pub position: Vec<u8>,
    /// User index.
    pub user: Vec<u32>,
    /// Item index.
    pub item: Vec<u32>,
    /// Item category index.
    pub category: Vec<u16>,
    /// Item brand index.
    pub brand: Vec<u16>,
    /// Hand-crafted cross-feature id (< [`Dataset::COMBINE_CARD`]).
    pub combine: Vec<u16>,
    /// Dense statistics, `DENSE_FEATURES` per example, row-major.
    pub dense: Vec<f32>,
    /// Behavior sequence item ids (`+1`, 0 = pad), `seq_len` per example.
    pub seq_item: Vec<u32>,
    /// Sequence category ids (`+1`, 0 = pad).
    pub seq_cat: Vec<u16>,
    /// Sequence brand ids (`+1`, 0 = pad).
    pub seq_brand: Vec<u16>,
    /// Sequence time-period ids (`+1`, 0 = pad).
    pub seq_tp: Vec<u8>,
    /// Sequence hour ids (`+1`, 0 = pad).
    pub seq_hour: Vec<u8>,
    /// Sequence city ids (`+1`, 0 = pad).
    pub seq_city: Vec<u16>,
    /// Sequence geohash ids (`+1`, 0 = pad).
    pub seq_geo: Vec<u32>,
    /// Per-position flag: behavior matches the impression's spatiotemporal
    /// context (same time-period, nearby geohash) — StSTL's filter.
    pub seq_st_flag: Vec<u8>,
    /// Valid prefix length of each sequence.
    pub seq_used: Vec<u8>,
}

impl Dataset {
    /// Cardinality of the combine cross-feature.
    pub const COMBINE_CARD: usize = 30;

    /// An empty dataset shell for the given config.
    pub fn empty(config: WorldConfig) -> Self {
        Self {
            config,
            label: Vec::new(),
            true_prob: Vec::new(),
            day: Vec::new(),
            session: Vec::new(),
            hour: Vec::new(),
            tp: Vec::new(),
            city: Vec::new(),
            geohash: Vec::new(),
            position: Vec::new(),
            user: Vec::new(),
            item: Vec::new(),
            category: Vec::new(),
            brand: Vec::new(),
            combine: Vec::new(),
            dense: Vec::new(),
            seq_item: Vec::new(),
            seq_cat: Vec::new(),
            seq_brand: Vec::new(),
            seq_tp: Vec::new(),
            seq_hour: Vec::new(),
            seq_city: Vec::new(),
            seq_geo: Vec::new(),
            seq_st_flag: Vec::new(),
            seq_used: Vec::new(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// True when no examples are stored.
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }

    /// Sequence capacity per example.
    pub fn seq_len(&self) -> usize {
        self.config.seq_len
    }

    /// Indices of training examples (`day < train_days`).
    pub fn train_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| (self.day[i] as usize) < self.config.train_days)
            .collect()
    }

    /// Indices of test examples.
    pub fn test_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| (self.day[i] as usize) >= self.config.train_days)
            .collect()
    }

    /// Empirical CTR over all examples.
    pub fn ctr(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.label.iter().map(|&l| l as f64).sum::<f64>() / self.len() as f64
    }

    /// Assemble a model-facing batch from example indices.
    ///
    /// Large batches are encoded in parallel: the index list is split into
    /// contiguous chunks, each chunk fills its own partial [`Batch`], and the
    /// parts are concatenated in chunk order — byte-for-byte the same result
    /// as the serial path for any thread count.
    pub fn batch(&self, indices: &[usize]) -> Batch {
        let b = indices.len();
        let t = self.seq_len();
        // Per example we copy ~7 sequence columns plus dense + scalar ids.
        let work = b * (7 * t + DENSE_FEATURES + 16);
        let threads = pool::threads_for(b, work);
        if threads <= 1 {
            let mut batch = Batch::with_capacity(b, t);
            self.fill_batch(&mut batch, indices);
            return batch.seal();
        }
        let chunks: Vec<&[usize]> = indices.chunks(b.div_ceil(threads)).collect();
        let parts = pool::par_map(&chunks, |chunk| {
            let mut part = Batch::with_capacity(chunk.len(), t);
            self.fill_batch(&mut part, chunk);
            part
        });
        let mut batch = Batch::with_capacity(b, t);
        for part in parts {
            batch.append_columns(part);
        }
        batch.seal()
    }

    /// Append the examples at `indices` onto `batch`'s raw columns.
    fn fill_batch(&self, batch: &mut Batch, indices: &[usize]) {
        let t = self.seq_len();
        for &i in indices {
            batch.labels_vec.push(self.label[i]);
            batch.user_ids.push(self.user[i] + 1);
            batch.item_ids.push(self.item[i] + 1);
            batch.cat_ids.push(self.category[i] as u32 + 1);
            batch.brand_ids.push(self.brand[i] as u32 + 1);
            batch.city_ids.push(self.city[i] as u32 + 1);
            batch.hour_ids.push(self.hour[i] as u32 + 1);
            batch.tp_ids.push(self.tp[i] as u32 + 1);
            batch.geo_ids.push(self.geohash[i] + 1);
            batch.pos_ids.push(self.position[i] as u32 + 1);
            batch.combine_ids.push(self.combine[i] as u32 + 1);
            batch
                .dense_vec
                .extend_from_slice(&self.dense[i * DENSE_FEATURES..(i + 1) * DENSE_FEATURES]);
            let s = i * t;
            batch.seq_item.extend_from_slice(&self.seq_item[s..s + t]);
            batch.seq_cat.extend(self.seq_cat[s..s + t].iter().map(|&v| v as u32));
            batch.seq_brand.extend(self.seq_brand[s..s + t].iter().map(|&v| v as u32));
            batch.seq_tp.extend(self.seq_tp[s..s + t].iter().map(|&v| v as u32));
            batch.seq_hour.extend(self.seq_hour[s..s + t].iter().map(|&v| v as u32));
            batch.seq_city.extend(self.seq_city[s..s + t].iter().map(|&v| v as u32));
            batch.seq_geo.extend_from_slice(&self.seq_geo[s..s + t]);
            for k in 0..t {
                let valid = self.seq_item[s + k] != 0;
                batch.mask_vec.push(if valid { 1.0 } else { 0.0 });
                batch.st_mask_vec.push(if valid && self.seq_st_flag[s + k] != 0 {
                    1.0
                } else {
                    0.0
                });
            }
            batch.tp_raw.push(self.tp[i]);
            batch.city_raw.push(self.city[i]);
            batch.session.push(self.session[i]);
        }
    }

    /// Iterate training batches in a fresh shuffled order.
    pub fn shuffled_batches(
        &self,
        indices: &[usize],
        batch_size: usize,
        rng: &mut Prng,
    ) -> Vec<Vec<usize>> {
        let mut order = indices.to_vec();
        rng.shuffle(&mut order);
        order.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }
}

/// A model-facing minibatch. Scalar id columns are embedding-ready (`+1`
/// shifted); sequence columns use 0 as padding with an explicit mask.
pub struct Batch {
    /// Batch size.
    pub size: usize,
    /// Sequence capacity.
    pub seq_len: usize,
    /// `[size, 1]` click labels.
    pub labels: Tensor,
    /// `[size, DENSE_FEATURES]` normalized statistics.
    pub dense: Tensor,
    /// `[size, seq_len]` 0/1 validity mask.
    pub mask: Tensor,
    /// `[size, seq_len]` mask restricted to behaviors matching the current
    /// spatiotemporal context (StSTL's personalized filter).
    pub st_mask: Tensor,
    pub user_ids: Vec<u32>,
    pub item_ids: Vec<u32>,
    pub cat_ids: Vec<u32>,
    pub brand_ids: Vec<u32>,
    pub city_ids: Vec<u32>,
    pub hour_ids: Vec<u32>,
    pub tp_ids: Vec<u32>,
    pub geo_ids: Vec<u32>,
    pub pos_ids: Vec<u32>,
    pub combine_ids: Vec<u32>,
    pub seq_item: Vec<u32>,
    pub seq_cat: Vec<u32>,
    pub seq_brand: Vec<u32>,
    pub seq_tp: Vec<u32>,
    pub seq_hour: Vec<u32>,
    pub seq_city: Vec<u32>,
    pub seq_geo: Vec<u32>,
    /// Raw time-period per example (metrics grouping).
    pub tp_raw: Vec<u8>,
    /// Raw city per example (metrics grouping).
    pub city_raw: Vec<u16>,
    /// Session id per example (NDCG grouping).
    pub session: Vec<u32>,
    labels_vec: Vec<f32>,
    dense_vec: Vec<f32>,
    mask_vec: Vec<f32>,
    st_mask_vec: Vec<f32>,
}

impl Batch {
    fn with_capacity(b: usize, t: usize) -> Self {
        Self {
            size: b,
            seq_len: t,
            labels: Tensor::zeros(0, 0),
            dense: Tensor::zeros(0, 0),
            mask: Tensor::zeros(0, 0),
            st_mask: Tensor::zeros(0, 0),
            user_ids: Vec::with_capacity(b),
            item_ids: Vec::with_capacity(b),
            cat_ids: Vec::with_capacity(b),
            brand_ids: Vec::with_capacity(b),
            city_ids: Vec::with_capacity(b),
            hour_ids: Vec::with_capacity(b),
            tp_ids: Vec::with_capacity(b),
            geo_ids: Vec::with_capacity(b),
            pos_ids: Vec::with_capacity(b),
            combine_ids: Vec::with_capacity(b),
            seq_item: Vec::with_capacity(b * t),
            seq_cat: Vec::with_capacity(b * t),
            seq_brand: Vec::with_capacity(b * t),
            seq_tp: Vec::with_capacity(b * t),
            seq_hour: Vec::with_capacity(b * t),
            seq_city: Vec::with_capacity(b * t),
            seq_geo: Vec::with_capacity(b * t),
            tp_raw: Vec::with_capacity(b),
            city_raw: Vec::with_capacity(b),
            session: Vec::with_capacity(b),
            labels_vec: Vec::with_capacity(b),
            dense_vec: Vec::with_capacity(b * DENSE_FEATURES),
            mask_vec: Vec::with_capacity(b * t),
            st_mask_vec: Vec::with_capacity(b * t),
        }
    }

    /// Append the raw (unsealed) columns of `part` onto `self`, preserving
    /// order. Used to merge chunk-parallel partial batches.
    fn append_columns(&mut self, mut part: Batch) {
        self.user_ids.append(&mut part.user_ids);
        self.item_ids.append(&mut part.item_ids);
        self.cat_ids.append(&mut part.cat_ids);
        self.brand_ids.append(&mut part.brand_ids);
        self.city_ids.append(&mut part.city_ids);
        self.hour_ids.append(&mut part.hour_ids);
        self.tp_ids.append(&mut part.tp_ids);
        self.geo_ids.append(&mut part.geo_ids);
        self.pos_ids.append(&mut part.pos_ids);
        self.combine_ids.append(&mut part.combine_ids);
        self.seq_item.append(&mut part.seq_item);
        self.seq_cat.append(&mut part.seq_cat);
        self.seq_brand.append(&mut part.seq_brand);
        self.seq_tp.append(&mut part.seq_tp);
        self.seq_hour.append(&mut part.seq_hour);
        self.seq_city.append(&mut part.seq_city);
        self.seq_geo.append(&mut part.seq_geo);
        self.tp_raw.append(&mut part.tp_raw);
        self.city_raw.append(&mut part.city_raw);
        self.session.append(&mut part.session);
        self.labels_vec.append(&mut part.labels_vec);
        self.dense_vec.append(&mut part.dense_vec);
        self.mask_vec.append(&mut part.mask_vec);
        self.st_mask_vec.append(&mut part.st_mask_vec);
    }

    fn seal(mut self) -> Self {
        let b = self.size;
        let t = self.seq_len;
        self.labels = Tensor::from_vec(b, 1, std::mem::take(&mut self.labels_vec));
        self.dense = Tensor::from_vec(b, DENSE_FEATURES, std::mem::take(&mut self.dense_vec));
        self.mask = Tensor::from_vec(b, t, std::mem::take(&mut self.mask_vec));
        self.st_mask = Tensor::from_vec(b, t, std::mem::take(&mut self.st_mask_vec));
        self
    }

    /// The time-period of example `i` as an enum.
    pub fn time_period(&self, i: usize) -> TimePeriod {
        TimePeriod::from_index(self.tp_raw[i] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_dataset;

    #[test]
    fn batch_shapes_and_id_shift() {
        let ds = generate_dataset(&WorldConfig::tiny()).dataset;
        assert!(ds.len() > 100);
        let idx: Vec<usize> = (0..32).collect();
        let batch = ds.batch(&idx);
        assert_eq!(batch.size, 32);
        assert_eq!(batch.labels.shape(), (32, 1));
        assert_eq!(batch.dense.shape(), (32, DENSE_FEATURES));
        assert_eq!(batch.mask.shape(), (32, ds.seq_len()));
        // Scalar ids are +1 shifted: never 0.
        assert!(batch.user_ids.iter().all(|&v| v >= 1));
        assert!(batch.tp_ids.iter().all(|&v| (1..=5).contains(&v)));
        assert_eq!(batch.seq_item.len(), 32 * ds.seq_len());
    }

    #[test]
    fn mask_matches_padding() {
        let ds = generate_dataset(&WorldConfig::tiny()).dataset;
        let idx: Vec<usize> = (0..64.min(ds.len())).collect();
        let batch = ds.batch(&idx);
        for r in 0..batch.size {
            for k in 0..batch.seq_len {
                let valid = batch.seq_item[r * batch.seq_len + k] != 0;
                assert_eq!(batch.mask.get(r, k) != 0.0, valid);
                // st_mask is a subset of mask.
                assert!(batch.st_mask.get(r, k) <= batch.mask.get(r, k));
            }
        }
    }

    #[test]
    fn train_test_split_by_day() {
        let cfg = WorldConfig::tiny();
        let ds = generate_dataset(&cfg).dataset;
        let train = ds.train_indices();
        let test = ds.test_indices();
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(!train.is_empty() && !test.is_empty());
        assert!(train.iter().all(|&i| (ds.day[i] as usize) < cfg.train_days));
        assert!(test.iter().all(|&i| (ds.day[i] as usize) >= cfg.train_days));
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let ds = generate_dataset(&WorldConfig::tiny()).dataset;
        let idx: Vec<usize> = (0..ds.len().min(97)).collect();
        let serial = ds.batch(&idx);
        pool::set_threads(4);
        pool::set_min_work(0);
        let parallel = ds.batch(&idx);
        pool::set_threads(0);
        pool::set_min_work(usize::MAX);
        assert_eq!(serial.labels.data(), parallel.labels.data());
        assert_eq!(serial.dense.data(), parallel.dense.data());
        assert_eq!(serial.mask.data(), parallel.mask.data());
        assert_eq!(serial.st_mask.data(), parallel.st_mask.data());
        assert_eq!(serial.user_ids, parallel.user_ids);
        assert_eq!(serial.item_ids, parallel.item_ids);
        assert_eq!(serial.seq_item, parallel.seq_item);
        assert_eq!(serial.seq_geo, parallel.seq_geo);
        assert_eq!(serial.session, parallel.session);
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let ds = generate_dataset(&WorldConfig::tiny()).dataset;
        let idx = ds.train_indices();
        let mut rng = Prng::seeded(1);
        let batches = ds.shuffled_batches(&idx, 17, &mut rng);
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        let mut want = idx.clone();
        want.sort_unstable();
        assert_eq!(seen, want);
    }
}
