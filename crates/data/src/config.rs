//! World/dataset configuration and the two paper-shaped presets.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic spatiotemporal world and of the impression log
/// generated from it. All sizes are laptop-scale by default but preserve the
/// paper datasets' *relative* structure; scale them up freely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Dataset name used in reports.
    pub name: String,
    /// RNG seed for world construction and log generation.
    pub seed: u64,
    /// Number of users.
    pub n_users: usize,
    /// Number of items (shops).
    pub n_items: usize,
    /// Number of cities (traffic is Zipf over cities).
    pub n_cities: usize,
    /// Number of item categories.
    pub n_categories: usize,
    /// Number of brands.
    pub n_brands: usize,
    /// Geohash grid side per city (cells are `grid x grid`).
    pub geo_grid: usize,
    /// Latent taste/quality dimensionality of the ground-truth click model.
    pub latent_dim: usize,
    /// Behavior-sequence capacity (the paper's ML ≈ 41-43).
    pub seq_len: usize,
    /// Target bootstrapped history events per user (scaled by user activity):
    /// compresses the months of pre-log behavior the production sequences
    /// carry, so ML is meaningful from day one.
    pub history_bootstrap: usize,
    /// Warm-up days generated only to populate behavior histories.
    pub warmup_days: usize,
    /// Recorded training days (the paper uses 45 and 7; we default smaller).
    pub train_days: usize,
    /// Recorded test days (paper: 1).
    pub test_days: usize,
    /// Sessions (user requests) per day.
    pub sessions_per_day: usize,
    /// Candidate items per session (exposure list length).
    pub candidates_per_session: usize,
    /// Global logit offset controlling the base CTR level.
    pub base_logit: f32,
    /// Std of the irreducible per-impression logit noise.
    pub label_noise: f32,
    /// Strength multiplier of the spatiotemporal structure (time/city bias
    /// and time-varying feature weights). 0 removes all spatiotemporal
    /// signal; 1 is the calibrated default.
    pub st_strength: f32,
    /// Reported "#Feature" count analogous to Table III (schema columns; the
    /// Ele.me production schema has 417, the public dataset 38).
    pub reported_features: usize,
}

impl WorldConfig {
    /// The Ele.me-like preset: richer features, heavier spatiotemporal skew,
    /// CTR ≈ 3.6% (Table III: 86.7M clicks / 2.38B impressions).
    pub fn eleme_like() -> Self {
        Self {
            name: "eleme".into(),
            seed: 2022,
            n_users: 3_000,
            n_items: 3_000,
            n_cities: 10,
            n_categories: 40,
            n_brands: 200,
            geo_grid: 8,
            latent_dim: 8,
            seq_len: 20,
            history_bootstrap: 26,
            warmup_days: 2,
            train_days: 7,
            test_days: 1,
            sessions_per_day: 4_000,
            candidates_per_session: 8,
            base_logit: -3.55,
            label_noise: 0.35,
            st_strength: 1.0,
            reported_features: 417,
        }
    }

    /// The public-dataset-like preset: fewer features, sparser clicks
    /// (CTR ≈ 1.8%: Table III: 3.14M clicks / 177M impressions), noisier.
    pub fn public_like() -> Self {
        Self {
            name: "public".into(),
            seed: 131_047, // the Tianchi dataset id, for flavor
            n_users: 2_500,
            n_items: 4_000,
            n_cities: 8,
            n_categories: 30,
            n_brands: 120,
            geo_grid: 6,
            latent_dim: 8,
            seq_len: 20,
            history_bootstrap: 20,
            warmup_days: 2,
            train_days: 7,
            test_days: 1,
            sessions_per_day: 3_200,
            candidates_per_session: 8,
            base_logit: -4.45,
            label_noise: 0.55,
            st_strength: 0.7,
            reported_features: 38,
        }
    }

    /// A tiny configuration for unit tests (seconds, not minutes).
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            seed: 7,
            n_users: 200,
            n_items: 150,
            n_cities: 4,
            n_categories: 10,
            n_brands: 20,
            geo_grid: 4,
            latent_dim: 4,
            seq_len: 8,
            history_bootstrap: 6,
            warmup_days: 1,
            train_days: 2,
            test_days: 1,
            sessions_per_day: 150,
            candidates_per_session: 5,
            base_logit: -2.2,
            label_noise: 0.3,
            st_strength: 1.0,
            reported_features: 24,
        }
    }

    /// Recorded days (train + test).
    pub fn recorded_days(&self) -> usize {
        self.train_days + self.test_days
    }

    /// Total days including warm-up.
    pub fn total_days(&self) -> usize {
        self.warmup_days + self.recorded_days()
    }

    /// Expected number of recorded impressions. This is exact when every
    /// city's item pool is at least `candidates_per_session` deep (true for
    /// the shipped presets) and an upper bound otherwise — a session in a
    /// nearly-empty city exposes fewer items.
    pub fn expected_impressions(&self) -> usize {
        self.recorded_days() * self.sessions_per_day * self.candidates_per_session
    }

    /// Geohash cell count across all cities.
    pub fn n_geohash(&self) -> usize {
        self.n_cities * self.geo_grid * self.geo_grid
    }

    /// Basic sanity checks; panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.n_users > 0 && self.n_items > 0 && self.n_cities > 0);
        assert!(self.n_categories > 0 && self.n_brands > 0);
        assert!(self.geo_grid > 0 && self.latent_dim > 0);
        assert!(self.seq_len > 0 && self.candidates_per_session > 0);
        assert!(self.train_days > 0 && self.test_days > 0);
        assert!(self.st_strength >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorldConfig::eleme_like().validate();
        WorldConfig::public_like().validate();
        WorldConfig::tiny().validate();
    }

    #[test]
    fn derived_counts() {
        let c = WorldConfig::tiny();
        assert_eq!(c.recorded_days(), 3);
        assert_eq!(c.total_days(), 4);
        assert_eq!(c.expected_impressions(), 3 * 150 * 5);
        assert_eq!(c.n_geohash(), 4 * 16);
    }

    #[test]
    fn eleme_is_denser_than_public() {
        // The Ele.me preset must target a higher CTR than the public one, as
        // in Table III (3.6% vs 1.8%).
        assert!(WorldConfig::eleme_like().base_logit > WorldConfig::public_like().base_logit);
    }
}
