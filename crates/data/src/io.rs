//! Dataset export/import as TSV — interoperate with external tooling
//! (pandas, DuckDB, a different training stack) without binding this crate's
//! binary layout.
//!
//! One row per impression. Scalar columns first, then the behavior sequence
//! flattened as `|`-separated per-position records of
//! `item,cat,brand,tp,hour,city,geo,stflag` (padding positions omitted).

use crate::config::WorldConfig;
use crate::dataset::Dataset;
use crate::schema::DENSE_FEATURES;
use std::io::{self, BufRead, Write};

/// Column header of the TSV layout (version-checked on import).
pub const TSV_HEADER: &str = "label\ttrue_prob\tday\tsession\thour\ttp\tcity\tgeohash\t\
position\tuser\titem\tcategory\tbrand\tcombine\tdense\tseq";

/// Write the dataset as TSV.
pub fn export_tsv(ds: &Dataset, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "{TSV_HEADER}")?;
    let t = ds.seq_len();
    for i in 0..ds.len() {
        let dense: Vec<String> = ds.dense[i * DENSE_FEATURES..(i + 1) * DENSE_FEATURES]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let mut seq_parts: Vec<String> = Vec::new();
        for k in 0..t {
            let s = i * t + k;
            if ds.seq_item[s] == 0 {
                break; // padding is a suffix by construction
            }
            seq_parts.push(format!(
                "{},{},{},{},{},{},{},{}",
                ds.seq_item[s],
                ds.seq_cat[s],
                ds.seq_brand[s],
                ds.seq_tp[s],
                ds.seq_hour[s],
                ds.seq_city[s],
                ds.seq_geo[s],
                ds.seq_st_flag[s],
            ));
        }
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            ds.label[i],
            ds.true_prob[i],
            ds.day[i],
            ds.session[i],
            ds.hour[i],
            ds.tp[i],
            ds.city[i],
            ds.geohash[i],
            ds.position[i],
            ds.user[i],
            ds.item[i],
            ds.category[i],
            ds.brand[i],
            ds.combine[i],
            dense.join(","),
            seq_parts.join("|"),
        )?;
    }
    Ok(())
}

/// Parse error for TSV import.
#[derive(Debug)]
pub struct TsvError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TsvError {}

fn bad(line: usize, message: impl Into<String>) -> TsvError {
    TsvError { line, message: message.into() }
}

/// Read a TSV export back into a dataset shell built from `config` (which
/// supplies the sequence capacity and vocab sizes).
pub fn import_tsv(config: WorldConfig, input: &mut impl BufRead) -> Result<Dataset, TsvError> {
    let mut ds = Dataset::empty(config);
    let t = ds.seq_len();
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| bad(1, "empty file"))
        .and_then(|(n, r)| r.map(|l| (n, l)).map_err(|e| bad(n + 1, e.to_string())))?;
    if header.trim() != TSV_HEADER {
        return Err(bad(1, "header mismatch — wrong file or layout version"));
    }
    for (n, line) in lines {
        let lineno = n + 1;
        let line = line.map_err(|e| bad(lineno, e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 16 {
            return Err(bad(lineno, format!("expected 16 columns, got {}", cols.len())));
        }
        let p = |s: &str, what: &str| -> Result<f64, TsvError> {
            s.parse::<f64>().map_err(|_| bad(lineno, format!("bad {what}: {s:?}")))
        };
        ds.label.push(p(cols[0], "label")? as f32);
        ds.true_prob.push(p(cols[1], "true_prob")? as f32);
        ds.day.push(p(cols[2], "day")? as u16);
        ds.session.push(p(cols[3], "session")? as u32);
        ds.hour.push(p(cols[4], "hour")? as u8);
        ds.tp.push(p(cols[5], "tp")? as u8);
        ds.city.push(p(cols[6], "city")? as u16);
        ds.geohash.push(p(cols[7], "geohash")? as u32);
        ds.position.push(p(cols[8], "position")? as u8);
        ds.user.push(p(cols[9], "user")? as u32);
        ds.item.push(p(cols[10], "item")? as u32);
        ds.category.push(p(cols[11], "category")? as u16);
        ds.brand.push(p(cols[12], "brand")? as u16);
        ds.combine.push(p(cols[13], "combine")? as u16);
        let dense: Vec<f32> = cols[14]
            .split(',')
            .map(|v| p(v, "dense").map(|x| x as f32))
            .collect::<Result<_, _>>()?;
        if dense.len() != DENSE_FEATURES {
            return Err(bad(lineno, "wrong dense width"));
        }
        ds.dense.extend_from_slice(&dense);

        let mut used = 0usize;
        if !cols[15].is_empty() {
            for part in cols[15].split('|') {
                let f: Vec<&str> = part.split(',').collect();
                if f.len() != 8 {
                    return Err(bad(lineno, "bad sequence record"));
                }
                if used >= t {
                    return Err(bad(lineno, "sequence longer than capacity"));
                }
                ds.seq_item.push(p(f[0], "seq item")? as u32);
                ds.seq_cat.push(p(f[1], "seq cat")? as u16);
                ds.seq_brand.push(p(f[2], "seq brand")? as u16);
                ds.seq_tp.push(p(f[3], "seq tp")? as u8);
                ds.seq_hour.push(p(f[4], "seq hour")? as u8);
                ds.seq_city.push(p(f[5], "seq city")? as u16);
                ds.seq_geo.push(p(f[6], "seq geo")? as u32);
                ds.seq_st_flag.push(p(f[7], "seq stflag")? as u8);
                used += 1;
            }
        }
        ds.seq_used.push(used as u8);
        for _ in used..t {
            ds.seq_item.push(0);
            ds.seq_cat.push(0);
            ds.seq_brand.push(0);
            ds.seq_tp.push(0);
            ds.seq_hour.push(0);
            ds.seq_city.push(0);
            ds.seq_geo.push(0);
            ds.seq_st_flag.push(0);
        }
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_dataset;
    use std::io::BufReader;

    #[test]
    fn tsv_roundtrip_is_lossless() {
        let cfg = WorldConfig::tiny();
        let original = generate_dataset(&cfg).dataset;
        let mut buf = Vec::new();
        export_tsv(&original, &mut buf).unwrap();
        let restored = match import_tsv(cfg, &mut BufReader::new(buf.as_slice())) {
            Ok(ds) => ds,
            Err(e) => panic!("import failed: {e}"),
        };

        assert_eq!(original.len(), restored.len());
        assert_eq!(original.label, restored.label);
        assert_eq!(original.session, restored.session);
        assert_eq!(original.seq_item, restored.seq_item);
        assert_eq!(original.seq_st_flag, restored.seq_st_flag);
        assert_eq!(original.seq_used, restored.seq_used);
        assert_eq!(original.combine, restored.combine);
        // Dense floats survive the decimal round trip exactly (printed with
        // full precision).
        assert_eq!(original.dense, restored.dense);
    }

    #[test]
    fn batches_from_roundtripped_data_match() {
        let cfg = WorldConfig::tiny();
        let original = generate_dataset(&cfg).dataset;
        let mut buf = Vec::new();
        export_tsv(&original, &mut buf).unwrap();
        let restored = match import_tsv(cfg, &mut BufReader::new(buf.as_slice())) {
            Ok(ds) => ds,
            Err(e) => panic!("import failed: {e}"),
        };
        let a = original.batch(&[0, 5, 9]);
        let b = restored.batch(&[0, 5, 9]);
        assert_eq!(a.user_ids, b.user_ids);
        assert_eq!(a.mask.data(), b.mask.data());
        assert_eq!(a.st_mask.data(), b.st_mask.data());
    }

    #[test]
    fn header_mismatch_rejected() {
        let cfg = WorldConfig::tiny();
        let text = "wrong\theader\n";
        let err = match import_tsv(cfg, &mut BufReader::new(text.as_bytes())) {
            Err(e) => e,
            Ok(_) => panic!("header mismatch must be rejected"),
        };
        assert!(err.message.contains("header"));
    }

    #[test]
    fn malformed_row_reports_line() {
        let cfg = WorldConfig::tiny();
        let text = format!("{TSV_HEADER}\nnot\tenough\tcolumns\n");
        let err = match import_tsv(cfg, &mut BufReader::new(text.as_bytes())) {
            Err(e) => e,
            Ok(_) => panic!("short row must be rejected"),
        };
        assert_eq!(err.line, 2);
    }
}
