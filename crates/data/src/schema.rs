//! Feature schema: fields, time-periods and the categorical/dense layout
//! shared by every model (Table I of the paper).

use serde::{Deserialize, Serialize};

/// The paper's five meal time-periods (§III-A2: STAR uses them as domains).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimePeriod {
    Breakfast,
    Lunch,
    AfternoonTea,
    Dinner,
    Night,
}

/// All time-periods in canonical order.
pub const TIME_PERIODS: [TimePeriod; 5] = [
    TimePeriod::Breakfast,
    TimePeriod::Lunch,
    TimePeriod::AfternoonTea,
    TimePeriod::Dinner,
    TimePeriod::Night,
];

impl TimePeriod {
    /// Map an hour of day (0-23) to its time-period.
    pub fn from_hour(hour: u8) -> TimePeriod {
        match hour {
            5..=9 => TimePeriod::Breakfast,
            10..=13 => TimePeriod::Lunch,
            14..=16 => TimePeriod::AfternoonTea,
            17..=20 => TimePeriod::Dinner,
            _ => TimePeriod::Night,
        }
    }

    /// Canonical index (0-4).
    pub fn index(self) -> usize {
        match self {
            TimePeriod::Breakfast => 0,
            TimePeriod::Lunch => 1,
            TimePeriod::AfternoonTea => 2,
            TimePeriod::Dinner => 3,
            TimePeriod::Night => 4,
        }
    }

    /// Inverse of [`TimePeriod::index`].
    pub fn from_index(i: usize) -> TimePeriod {
        TIME_PERIODS[i]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TimePeriod::Breakfast => "breakfast",
            TimePeriod::Lunch => "lunch",
            TimePeriod::AfternoonTea => "afternoon-tea",
            TimePeriod::Dinner => "dinner",
            TimePeriod::Night => "night",
        }
    }
}

/// The paper's five feature fields (Table I). StAEL learns one adaptive
/// weight per *other* field conditioned on the spatiotemporal context field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Field {
    /// User ID, profiles, user statistics.
    User,
    /// The behavior sequence (item/category/brand/time-period/hour/city).
    UserBehavior,
    /// Candidate item ID, category, brand, position, shop statistics.
    CandidateItem,
    /// Time-period / hour / geohash / city.
    SpatiotemporalContext,
    /// Hand-selected user x item cross features.
    Combine,
}

/// All fields in canonical order.
pub const FIELDS: [Field; 5] = [
    Field::User,
    Field::UserBehavior,
    Field::CandidateItem,
    Field::SpatiotemporalContext,
    Field::Combine,
];

impl Field {
    /// Canonical index (0-4).
    pub fn index(self) -> usize {
        match self {
            Field::User => 0,
            Field::UserBehavior => 1,
            Field::CandidateItem => 2,
            Field::SpatiotemporalContext => 3,
            Field::Combine => 4,
        }
    }

    /// Human-readable name (used in the Fig. 8/9 heatmaps).
    pub fn name(self) -> &'static str {
        match self {
            Field::User => "user",
            Field::UserBehavior => "user-behavior",
            Field::CandidateItem => "candidate-item",
            Field::SpatiotemporalContext => "st-context",
            Field::Combine => "combine",
        }
    }
}

/// Number of sequence feature columns stored per behavior event
/// (item, category, brand, time-period, hour, city, geohash).
pub const SEQ_FEATURES: usize = 7;

/// Dense (statistics) feature columns attached to every example, normalized
/// to roughly unit scale:
/// user clicks (1d), user orders (90d), user activity, item CTR, item
/// popularity, item price tier, user-item distance, position.
pub const DENSE_FEATURES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_cover_all_periods() {
        let mut seen = [false; 5];
        for h in 0..24u8 {
            seen[TimePeriod::from_hour(h).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn meal_hours_map_sensibly() {
        assert_eq!(TimePeriod::from_hour(8), TimePeriod::Breakfast);
        assert_eq!(TimePeriod::from_hour(12), TimePeriod::Lunch);
        assert_eq!(TimePeriod::from_hour(15), TimePeriod::AfternoonTea);
        assert_eq!(TimePeriod::from_hour(19), TimePeriod::Dinner);
        assert_eq!(TimePeriod::from_hour(23), TimePeriod::Night);
        assert_eq!(TimePeriod::from_hour(2), TimePeriod::Night);
    }

    #[test]
    fn index_roundtrip() {
        for tp in TIME_PERIODS {
            assert_eq!(TimePeriod::from_index(tp.index()), tp);
        }
        for (i, f) in FIELDS.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }
}
