//! The generative spatiotemporal world: cities, users, items and the
//! ground-truth click model.
//!
//! The world implants exactly the two mechanisms the paper attributes its
//! gains to:
//!
//! 1. **Spatiotemporal bias** (Fig. 2 / Fig. 6): the base click propensity
//!    shifts with time-period, hour and city.
//! 2. **Time/space-varying feature importance** (Fig. 8 / Fig. 9): how much
//!    each signal (user taste, price match, category preference, item
//!    popularity, behavior-sequence affinity) contributes to the click logit
//!    depends on the time-period and on the city's activity level.
//!
//! Models that can adapt their parameters to the spatiotemporal context can
//! exploit both; static-parameter models cannot — which is the causal
//! structure behind the paper's Table IV ordering.

use crate::config::WorldConfig;
use crate::schema::TimePeriod;
use basm_tensor::Prng;

/// A city with Zipf-distributed traffic and its own click-propensity offset.
#[derive(Debug, Clone)]
pub struct City {
    /// Relative traffic weight (head city ≈ 1.0).
    pub traffic: f64,
    /// Additive logit offset: some cities simply click more (Fig. 2b).
    pub bias: f32,
    /// Fraction of all users homed in this city (filled by the generator).
    pub user_share: f32,
    /// City-specific multiplier on the personal-taste signal: how much local
    /// decisions hinge on individual preference vs. convention. Continuous
    /// per-city variation that a 5-domain partition cannot express.
    pub taste_factor: f32,
    /// City-specific multiplier on the popularity signal.
    pub pop_factor: f32,
    /// Phase of the city's within-day importance drift (hours).
    pub hour_phase: f32,
}

/// A user with a home location, latent taste and behavioral traits.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Home city index.
    pub city: u16,
    /// Home geohash cell `(x, y)` within the city grid.
    pub geo: (u8, u8),
    /// Latent taste vector (matched against item quality vectors).
    pub taste: Vec<f32>,
    /// Preferred price tier in `[0, 4]`.
    pub price_pref: f32,
    /// Preferred category.
    pub fav_category: u16,
    /// Secondary preferred category.
    pub alt_category: u16,
    /// Session-rate multiplier (heavy vs light users).
    pub activity: f32,
}

/// An item (shop) with location, taxonomy and latent quality.
#[derive(Debug, Clone)]
pub struct ItemProfile {
    /// City the shop is in.
    pub city: u16,
    /// Geohash cell within the city grid.
    pub geo: (u8, u8),
    /// Category index.
    pub category: u16,
    /// Brand index.
    pub brand: u16,
    /// Price tier in `[0, 4]`.
    pub price_tier: f32,
    /// Latent quality vector.
    pub quality: Vec<f32>,
    /// Baseline popularity in `[0, 1]`.
    pub popularity: f32,
}

/// The spatiotemporal context of one impression.
#[derive(Debug, Clone, Copy)]
pub struct Context {
    /// Day index (0-based over recorded + warmup days).
    pub day: u16,
    /// Hour of day.
    pub hour: u8,
    /// Derived time-period.
    pub tp: TimePeriod,
    /// City of the request.
    pub city: u16,
    /// Requesting geohash cell.
    pub geo: (u8, u8),
    /// Exposure position in the result list (0-based).
    pub position: u8,
}

/// Summary of the requesting user's recent behavior used by the click model.
#[derive(Debug, Clone, Copy, Default)]
pub struct BehaviorSummary {
    /// Fraction of recent clicks in the candidate's category.
    pub cat_affinity: f32,
    /// Fraction of recent clicks in the candidate's category *and* the
    /// current time-period (the StSTL filtering signal).
    pub cat_tp_affinity: f32,
}

/// The fully-materialized world.
pub struct World {
    /// Configuration it was built from.
    pub config: WorldConfig,
    /// Cities, Zipf-ordered (index 0 is the largest).
    pub cities: Vec<City>,
    /// All users.
    pub users: Vec<UserProfile>,
    /// All items.
    pub items: Vec<ItemProfile>,
    /// Relative exposure weight of each hour (bimodal lunch/dinner peaks).
    pub hour_weights: [f64; 24],
    /// Additive logit offset per time-period.
    pub time_bias: [f32; 5],
    /// Small residual per-hour offset inside a time-period.
    pub hour_bias: [f32; 24],
}

impl World {
    /// Build a world from a configuration (deterministic in `config.seed`).
    pub fn generate(config: WorldConfig) -> Self {
        config.validate();
        let mut rng = Prng::seeded(config.seed);
        let s = config.st_strength;

        // Cities: Zipf traffic, alternating-sign click bias so city CTRs
        // spread like Fig. 2b.
        let mut cities: Vec<City> = (0..config.n_cities)
            .map(|i| City {
                traffic: 1.0 / (i as f64 + 1.0).powf(1.05),
                bias: s * rng.normal_with(0.0, 0.3).clamp(-0.6, 0.6),
                user_share: 0.0,
                taste_factor: 1.0 + s * rng.normal_with(0.0, 0.25).clamp(-0.45, 0.45),
                pop_factor: 1.0 + s * rng.normal_with(0.0, 0.25).clamp(-0.45, 0.45),
                hour_phase: rng.uniform_range(0.0, 24.0),
            })
            .collect();

        // Users: homed by Zipf over cities.
        let users: Vec<UserProfile> = (0..config.n_users)
            .map(|_| {
                let city = rng.zipf(config.n_cities, 1.05) as u16;
                let fav = rng.below(config.n_categories) as u16;
                let mut alt = rng.below(config.n_categories) as u16;
                if alt == fav {
                    alt = (alt + 1) % config.n_categories as u16;
                }
                UserProfile {
                    city,
                    geo: (rng.below(config.geo_grid) as u8, rng.below(config.geo_grid) as u8),
                    taste: (0..config.latent_dim).map(|_| rng.normal() * 0.8).collect(),
                    price_pref: rng.uniform_range(0.0, 4.0),
                    fav_category: fav,
                    alt_category: alt,
                    activity: (0.3 + rng.uniform() * 1.7).powi(2) / 2.0,
                }
            })
            .collect();
        let mut counts = vec![0usize; config.n_cities];
        for u in &users {
            counts[u.city as usize] += 1;
        }
        for (c, &n) in cities.iter_mut().zip(counts.iter()) {
            c.user_share = n as f32 / config.n_users as f32;
        }

        // Items: placed across cities proportional to traffic.
        let traffic: Vec<f64> = cities.iter().map(|c| c.traffic).collect();
        let items: Vec<ItemProfile> = (0..config.n_items)
            .map(|_| {
                let city = rng.weighted(&traffic) as u16;
                ItemProfile {
                    city,
                    geo: (rng.below(config.geo_grid) as u8, rng.below(config.geo_grid) as u8),
                    category: rng.zipf(config.n_categories, 0.9) as u16,
                    brand: rng.zipf(config.n_brands, 1.0) as u16,
                    price_tier: rng.uniform_range(0.0, 4.0),
                    quality: (0..config.latent_dim).map(|_| rng.normal() * 0.8).collect(),
                    popularity: rng.uniform().powi(2),
                }
            })
            .collect();

        // Hour exposure curve: breakfast bump, lunch and dinner peaks, thin
        // night tail (Fig. 2a).
        let mut hour_weights = [0.0f64; 24];
        for (h, w) in hour_weights.iter_mut().enumerate() {
            let hf = h as f64;
            let peak = |mu: f64, sigma: f64, amp: f64| {
                amp * (-((hf - mu) * (hf - mu)) / (2.0 * sigma * sigma)).exp()
            };
            *w = 0.05
                + peak(8.0, 1.2, 0.35)
                + peak(12.0, 1.4, 1.0)
                + peak(15.5, 1.5, 0.25)
                + peak(19.0, 1.6, 0.9)
                + peak(22.5, 1.5, 0.15);
        }

        // Time-period bias: people click-through more decisively at meals.
        let time_bias = [
            -0.25 * s, // breakfast
            0.30 * s,  // lunch
            -0.35 * s, // afternoon tea (browsing mode)
            0.25 * s,  // dinner
            -0.15 * s, // night
        ];
        let mut hour_bias = [0.0f32; 24];
        for (h, b) in hour_bias.iter_mut().enumerate() {
            *b = s * 0.08 * ((h as f32) * 0.7).sin();
        }

        Self { config, cities, users, items, hour_weights, time_bias, hour_bias }
    }

    /// Smooth within-day modulation: the spatiotemporal scenario is
    /// *continuous and non-enumerable* (§I) — importance drifts hour by hour
    /// (phase-shifted per city), so no finite domain partition captures it.
    fn hour_drift(&self, hour: u8, city: u16, amp: f32) -> f32 {
        let phase = self.cities[city as usize].hour_phase;
        1.0 + self.config.st_strength
            * amp
            * ((hour as f32 - phase) * std::f32::consts::TAU / 24.0).sin()
    }

    /// Weight of the user-taste signal: peaks at meals, amplified in cities
    /// with more users and by each city's own taste factor, drifting
    /// continuously within the day.
    pub fn w_taste(&self, tp: TimePeriod, city: u16, hour: u8) -> f32 {
        let base = match tp {
            TimePeriod::Breakfast => 0.45,
            TimePeriod::Lunch => 1.15,
            TimePeriod::AfternoonTea => 0.60,
            TimePeriod::Dinner => 1.10,
            TimePeriod::Night => 0.50,
        };
        let c = &self.cities[city as usize];
        let city_boost = (0.75 + 1.5 * c.user_share) * c.taste_factor;
        self.blend(base * city_boost * self.hour_drift(hour, city, 0.30), 0.7)
    }

    /// Weight of the price-match signal (matters at meals, drifts hourly).
    pub fn w_price(&self, tp: TimePeriod, city: u16, hour: u8) -> f32 {
        let base = match tp {
            TimePeriod::Breakfast => 0.50,
            TimePeriod::Lunch => 1.00,
            TimePeriod::AfternoonTea => 0.20,
            TimePeriod::Dinner => 0.90,
            TimePeriod::Night => 0.30,
        };
        self.blend(base * self.hour_drift(hour.wrapping_add(6), city, 0.25), 0.55)
    }

    /// Weight of the category-preference signal (matters when browsing).
    pub fn w_category(&self, tp: TimePeriod, city: u16, hour: u8) -> f32 {
        let base = match tp {
            TimePeriod::Breakfast => 0.55,
            TimePeriod::Lunch => 0.40,
            TimePeriod::AfternoonTea => 1.15,
            TimePeriod::Dinner => 0.40,
            TimePeriod::Night => 0.65,
        };
        self.blend(base * self.hour_drift(hour.wrapping_add(12), city, 0.25), 0.6)
    }

    /// Weight of raw item popularity, higher off-peak, in small cities, and
    /// scaled by the city's own popularity factor.
    pub fn w_popularity(&self, tp: TimePeriod, city: u16, hour: u8) -> f32 {
        let base = match tp {
            TimePeriod::Breakfast => 0.85,
            TimePeriod::Lunch => 0.40,
            TimePeriod::AfternoonTea => 0.60,
            TimePeriod::Dinner => 0.40,
            TimePeriod::Night => 0.90,
        };
        let c = &self.cities[city as usize];
        let small_city_boost = (1.0 + (0.25 - c.user_share).max(0.0)) * c.pop_factor;
        self.blend(base * small_city_boost * self.hour_drift(hour.wrapping_add(18), city, 0.25), 0.6)
    }

    /// Weight of the behavior-sequence affinity (periodic re-ordering at
    /// meals — the signal DIN-family models extract).
    pub fn w_sequence(&self, tp: TimePeriod, city: u16, hour: u8) -> f32 {
        let base = match tp {
            TimePeriod::Lunch | TimePeriod::Dinner => 0.95,
            TimePeriod::Breakfast => 0.65,
            _ => 0.40,
        };
        self.blend(base * self.hour_drift(hour.wrapping_add(3), city, 0.20), 0.6)
    }

    /// Interpolate a time-varying weight toward its neutral value according
    /// to `st_strength` (0 → fully static world).
    fn blend(&self, value: f32, neutral: f32) -> f32 {
        neutral + (value - neutral) * self.config.st_strength
    }

    /// Normalized grid distance between two cells in `[0, 1]`.
    pub fn geo_distance(&self, a: (u8, u8), b: (u8, u8)) -> f32 {
        let dx = a.0 as f32 - b.0 as f32;
        let dy = a.1 as f32 - b.1 as f32;
        let max = (2.0f32).sqrt() * (self.config.geo_grid.max(2) - 1) as f32;
        (dx * dx + dy * dy).sqrt() / max
    }

    /// The ground-truth click logit of `user` on `item` under `ctx`, given a
    /// summary of the user's recent behavior.
    pub fn click_logit(
        &self,
        user: &UserProfile,
        item: &ItemProfile,
        ctx: Context,
        beh: BehaviorSummary,
    ) -> f32 {
        let tp = ctx.tp;
        let taste: f32 = user
            .taste
            .iter()
            .zip(item.quality.iter())
            .map(|(&t, &q)| t * q)
            .sum::<f32>()
            / (self.config.latent_dim as f32).sqrt();
        let price_match = 1.0 - (user.price_pref - item.price_tier).abs() / 4.0; // [0,1]
        let cat_pref = if item.category == user.fav_category {
            1.0
        } else if item.category == user.alt_category {
            0.5
        } else {
            0.0
        };
        let dist = self.geo_distance(ctx.geo, item.geo);

        self.config.base_logit
            + self.time_bias[tp.index()]
            + self.cities[ctx.city as usize].bias
            + self.hour_bias[ctx.hour as usize]
            + self.w_taste(tp, ctx.city, ctx.hour) * taste
            + self.w_price(tp, ctx.city, ctx.hour) * (price_match - 0.5)
            + self.w_category(tp, ctx.city, ctx.hour) * cat_pref
            + self.w_popularity(tp, ctx.city, ctx.hour) * (item.popularity - 0.3)
            + self.w_sequence(tp, ctx.city, ctx.hour)
                * (0.8 * beh.cat_affinity + 1.2 * beh.cat_tp_affinity)
            - 0.9 * dist
            - 0.12 * ctx.position as f32
    }

    /// Click probability for the same arguments.
    pub fn click_probability(
        &self,
        user: &UserProfile,
        item: &ItemProfile,
        ctx: Context,
        beh: BehaviorSummary,
        noise: f32,
    ) -> f32 {
        let z = self.click_logit(user, item, ctx, beh) + noise;
        basm_tensor::graph::stable_sigmoid(z)
    }

    /// Global geohash id of a cell in a city (0 is never used as a real id —
    /// callers add 1 when embedding).
    pub fn geohash_id(&self, city: u16, geo: (u8, u8)) -> u32 {
        let g = self.config.geo_grid as u32;
        city as u32 * g * g + geo.0 as u32 * g + geo.1 as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.users[3].taste, b.users[3].taste);
        assert_eq!(a.items[5].category, b.items[5].category);
        assert_eq!(a.cities[0].bias, b.cities[0].bias);
    }

    #[test]
    fn city_shares_sum_to_one() {
        let w = tiny_world();
        let total: f32 = w.cities.iter().map(|c| c.user_share).sum();
        assert!((total - 1.0).abs() < 1e-4);
        assert!(w.cities[0].user_share >= w.cities.last().unwrap().user_share);
    }

    #[test]
    fn hour_curve_peaks_at_meals() {
        let w = tiny_world();
        assert!(w.hour_weights[12] > w.hour_weights[15]);
        assert!(w.hour_weights[19] > w.hour_weights[15]);
        assert!(w.hour_weights[12] > w.hour_weights[3] * 5.0);
    }

    #[test]
    fn meal_weights_emphasize_user_side() {
        let w = tiny_world();
        assert!(w.w_taste(TimePeriod::Lunch, 0, 12) > w.w_taste(TimePeriod::Night, 0, 23));
        assert!(w.w_price(TimePeriod::Lunch, 0, 12) > w.w_price(TimePeriod::AfternoonTea, 0, 15));
        assert!(
            w.w_category(TimePeriod::AfternoonTea, 0, 15) > w.w_category(TimePeriod::Lunch, 0, 12)
        );
        assert!(
            w.w_popularity(TimePeriod::Night, 0, 23) > w.w_popularity(TimePeriod::Lunch, 0, 12)
        );
    }

    #[test]
    fn big_city_boosts_user_taste_weight() {
        let w = tiny_world();
        let big = 0u16;
        let small = (w.config.n_cities - 1) as u16;
        // Average over hours to isolate the city effect from hour drift.
        let avg = |city: u16| -> f32 {
            (0..24).map(|h| w.w_taste(TimePeriod::Lunch, city, h)).sum::<f32>() / 24.0
        };
        assert!(avg(big) > avg(small) * 0.8, "{} vs {}", avg(big), avg(small));
    }

    #[test]
    fn zero_strength_freezes_spatiotemporal_structure() {
        let mut cfg = WorldConfig::tiny();
        cfg.st_strength = 0.0;
        let w = World::generate(cfg);
        assert_eq!(w.time_bias, [0.0; 5]);
        assert!(
            (w.w_taste(TimePeriod::Lunch, 0, 12) - w.w_taste(TimePeriod::Night, 2, 23)).abs()
                < 1e-6
        );
    }

    #[test]
    fn click_logit_prefers_matching_items() {
        let w = tiny_world();
        let user = &w.users[0];
        let ctx = Context {
            day: 0,
            hour: 12,
            tp: TimePeriod::Lunch,
            city: user.city,
            geo: user.geo,
            position: 0,
        };
        // An item tailor-made for the user...
        let good = ItemProfile {
            city: user.city,
            geo: user.geo,
            category: user.fav_category,
            brand: 1,
            price_tier: user.price_pref,
            quality: user.taste.clone(),
            popularity: 0.9,
        };
        // ...and its opposite.
        let bad = ItemProfile {
            city: user.city,
            geo: (
                (w.config.geo_grid - 1 - user.geo.0 as usize) as u8,
                (w.config.geo_grid - 1 - user.geo.1 as usize) as u8,
            ),
            category: (user.fav_category + 2) % w.config.n_categories as u16,
            brand: 1,
            price_tier: 4.0 - user.price_pref,
            quality: user.taste.iter().map(|t| -t).collect(),
            popularity: 0.05,
        };
        let b = BehaviorSummary::default();
        assert!(w.click_logit(user, &good, ctx, b) > w.click_logit(user, &bad, ctx, b) + 1.0);
    }

    #[test]
    fn position_bias_decreases_logit() {
        let w = tiny_world();
        let user = &w.users[1];
        let item = &w.items[1];
        let mk = |pos| Context {
            day: 0,
            hour: 19,
            tp: TimePeriod::Dinner,
            city: user.city,
            geo: user.geo,
            position: pos,
        };
        let b = BehaviorSummary::default();
        assert!(w.click_logit(user, item, mk(0), b) > w.click_logit(user, item, mk(5), b));
    }

    #[test]
    fn geo_distance_bounds() {
        let w = tiny_world();
        assert_eq!(w.geo_distance((0, 0), (0, 0)), 0.0);
        let g = (w.config.geo_grid - 1) as u8;
        let d = w.geo_distance((0, 0), (g, g));
        assert!((d - 1.0).abs() < 1e-6);
    }
}
