//! Impression-log generation: the closed-loop process that turns a
//! [`World`] into a [`Dataset`].
//!
//! Each simulated session mirrors the production funnel in Fig. 1/13 of the
//! paper: a user opens the app at some hour and location, an LBS recall pulls
//! nearby candidates, a (noisy, ground-truth-correlated) legacy ranker orders
//! them, the top-k get exposed, and clicks are drawn from the ground-truth
//! click model. Users accumulate behavior history across days; per-user and
//! per-item counters provide the "statistics" dense features of Table I as
//! they would exist in production logs (as-of-impression-time values).

use crate::config::WorldConfig;
use crate::dataset::Dataset;
use crate::schema::{DENSE_FEATURES, TimePeriod};
use crate::world::{BehaviorSummary, Context, World};
use basm_tensor::Prng;
use std::collections::VecDeque;

type Event = BehaviorEvent;

/// One behavior event in a user's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BehaviorEvent {
    /// Clicked item index.
    pub item: u32,
    /// Item category.
    pub cat: u16,
    /// Item brand.
    pub brand: u16,
    /// Time-period index of the click.
    pub tp: u8,
    /// Hour of the click.
    pub hour: u8,
    /// City of the click.
    pub city: u16,
    /// Item geohash x within the city grid.
    pub gx: u8,
    /// Item geohash y within the city grid.
    pub gy: u8,
}

/// As-of-impression-time statistics counters (the production "statistics"
/// features of Table I). The serving simulator maintains its own copy — that
/// is the feature server's job.
pub struct StatCounters {
    /// Cumulative clicks per user.
    pub user_clicks: Vec<u32>,
    /// Cumulative orders per user.
    pub user_orders: Vec<u32>,
    /// Cumulative clicks per item.
    pub item_clicks: Vec<u32>,
    /// Cumulative exposures per item.
    pub item_exposures: Vec<u32>,
}

impl StatCounters {
    /// Zeroed counters for a world.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        Self {
            user_clicks: vec![0; n_users],
            user_orders: vec![0; n_users],
            item_clicks: vec![0; n_items],
            item_exposures: vec![0; n_items],
        }
    }
}

/// A world plus the impression log generated from it.
pub struct GeneratedData {
    /// The generating world (kept for serving simulation and analysis).
    pub world: World,
    /// The recorded impression log.
    pub dataset: Dataset,
}

/// Cumulative-weight sampler over a fixed distribution.
struct WeightedSampler {
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut cumulative = Vec::new();
        let mut total = 0.0;
        for w in weights {
            total += w.max(0.0);
            cumulative.push(total);
        }
        assert!(total > 0.0, "WeightedSampler: all-zero weights");
        Self { cumulative }
    }

    fn sample(&self, rng: &mut Prng) -> usize {
        let target = rng.uniform() as f64 * self.cumulative.last().copied().unwrap_or(1.0);
        self.cumulative.partition_point(|&c| c < target).min(self.cumulative.len() - 1)
    }
}

/// Generate the full impression log for a configuration.
pub fn generate_dataset(config: &WorldConfig) -> GeneratedData {
    let world = World::generate(config.clone());
    let mut rng = Prng::seeded(config.seed ^ 0xD47A_5E7);
    let dataset = generate_log(&world, &mut rng);
    GeneratedData { world, dataset }
}

fn generate_log(world: &World, rng: &mut Prng) -> Dataset {
    let cfg = &world.config;
    let t = cfg.seq_len;
    let mut ds = Dataset::empty(cfg.clone());
    let n_expected = cfg.expected_impressions();
    reserve(&mut ds, n_expected, t);

    // LBS substrate: items per city.
    let mut city_items: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_cities];
    for (i, item) in world.items.iter().enumerate() {
        city_items[item.city as usize].push(i as u32);
    }
    // Give any empty city a fallback pool (tiny configs).
    for c in 0..cfg.n_cities {
        if city_items[c].is_empty() {
            city_items[c].push(rng.below(cfg.n_items) as u32);
        }
    }

    let user_sampler = WeightedSampler::new(world.users.iter().map(|u| u.activity as f64));
    let hour_sampler = WeightedSampler::new(world.hour_weights.iter().copied());

    // Evolving state.
    let mut history: Vec<VecDeque<Event>> = vec![VecDeque::new(); cfg.n_users];
    let mut counters = StatCounters::new(cfg.n_users, cfg.n_items);

    // History bootstrap: compress the months of pre-log behavior production
    // sequences carry. For each user, draw past click events directly from
    // the ground-truth preference structure (pick among a few candidates in
    // proportion to their click probability) at meal-curve hours.
    for (uid, user) in world.users.iter().enumerate() {
        let n_events =
            ((cfg.history_bootstrap as f32) * user.activity).round().max(1.0) as usize;
        let pool = &city_items[user.city as usize];
        let h = &mut history[uid];
        for _ in 0..n_events.min(4 * t) {
            let hour = hour_sampler.sample(rng) as u8;
            let tp = TimePeriod::from_hour(hour);
            let ctx = Context {
                day: 0,
                hour,
                tp,
                city: user.city,
                geo: user.geo,
                position: 0,
            };
            // The user clicked *something*: pick among candidates weighted by
            // click probability so history reflects true preferences.
            let n_cand = 5.min(pool.len());
            let cands: Vec<u32> = (0..n_cand).map(|_| pool[rng.below(pool.len())]).collect();
            let weights: Vec<f64> = cands
                .iter()
                .map(|&iid| {
                    let item = &world.items[iid as usize];
                    let beh = summarize(h, item.category, tp, t);
                    world.click_probability(user, item, ctx, beh, 0.0) as f64
                })
                .collect();
            let pick = cands[rng.weighted(&weights)];
            let item = &world.items[pick as usize];
            h.push_back(Event {
                item: pick,
                cat: item.category,
                brand: item.brand,
                tp: tp.index() as u8,
                hour,
                city: user.city,
                gx: item.geo.0,
                gy: item.geo.1,
            });
            counters.user_clicks[uid] += 1;
            counters.item_clicks[pick as usize] += 1;
            counters.item_exposures[pick as usize] += 5;
            if rng.chance(0.35) {
                counters.user_orders[uid] += 1;
            }
        }
    }

    let k = cfg.candidates_per_session;
    let pool_size = (3 * k).min(64);
    let mut session_id: u32 = 0;

    for day in 0..cfg.total_days() {
        let recorded = day >= cfg.warmup_days;
        for _ in 0..cfg.sessions_per_day {
            let uid = user_sampler.sample(rng);
            let user = &world.users[uid];
            let hour = hour_sampler.sample(rng) as u8;
            let tp = TimePeriod::from_hour(hour);
            // Request location: home cell jittered by at most one cell.
            let jitter = |v: u8, rng: &mut Prng| {
                let d = rng.below(3) as i32 - 1;
                (v as i32 + d).clamp(0, cfg.geo_grid as i32 - 1) as u8
            };
            let geo = (jitter(user.geo.0, rng), jitter(user.geo.1, rng));
            let ctx0 = Context {
                day: day as u16,
                hour,
                tp,
                city: user.city,
                geo,
                position: 0,
            };

            // Recall: popularity-weighted sample from the city pool.
            let pool = &city_items[user.city as usize];
            let mut candidates: Vec<u32> = Vec::with_capacity(pool_size);
            for _ in 0..pool_size.min(pool.len() * 2) {
                let cand = pool[rng.below(pool.len())];
                if !candidates.contains(&cand) {
                    candidates.push(cand);
                }
                if candidates.len() == pool_size {
                    break;
                }
            }

            // Legacy ranker: ground-truth logit + noise, top-k exposed.
            let hist = &history[uid];
            let mut scored: Vec<(f32, u32)> = candidates
                .iter()
                .map(|&iid| {
                    let item = &world.items[iid as usize];
                    let beh = summarize(hist, item.category, tp, t);
                    let score =
                        world.click_logit(user, item, ctx0, beh) + rng.normal() * 0.8;
                    (score, iid)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            scored.truncate(k);

            let mut clicked_events: Vec<Event> = Vec::new();
            for (rank, &(_, iid)) in scored.iter().enumerate() {
                let item = &world.items[iid as usize];
                let ctx = Context { position: rank as u8, ..ctx0 };
                let beh = summarize(&history[uid], item.category, tp, t);
                let p = world.click_probability(
                    user,
                    item,
                    ctx,
                    beh,
                    rng.normal() * cfg.label_noise,
                );
                let label = rng.chance(p as f64);

                if recorded {
                    append_example(
                        &mut ds,
                        world,
                        uid,
                        iid,
                        ctx,
                        session_id,
                        label,
                        p,
                        &history[uid],
                        &counters,
                    );
                }

                counters.item_exposures[iid as usize] += 1;
                if label {
                    counters.user_clicks[uid] += 1;
                    counters.item_clicks[iid as usize] += 1;
                    if rng.chance(0.35) {
                        counters.user_orders[uid] += 1;
                    }
                    clicked_events.push(Event {
                        item: iid,
                        cat: item.category,
                        brand: item.brand,
                        tp: tp.index() as u8,
                        hour,
                        city: user.city,
                        gx: item.geo.0,
                        gy: item.geo.1,
                    });
                }
            }

            // Append clicks to history after the session, capped.
            let h = &mut history[uid];
            for ev in clicked_events {
                h.push_back(ev);
                while h.len() > 4 * t {
                    h.pop_front();
                }
            }
            if recorded {
                session_id += 1;
            }
        }
    }

    // Re-index recorded days to 0-based.
    let warm = world.config.warmup_days as u16;
    for d in &mut ds.day {
        *d -= warm;
    }
    ds
}

fn reserve(ds: &mut Dataset, n: usize, t: usize) {
    ds.label.reserve(n);
    ds.true_prob.reserve(n);
    ds.day.reserve(n);
    ds.session.reserve(n);
    ds.hour.reserve(n);
    ds.tp.reserve(n);
    ds.city.reserve(n);
    ds.geohash.reserve(n);
    ds.position.reserve(n);
    ds.user.reserve(n);
    ds.item.reserve(n);
    ds.category.reserve(n);
    ds.brand.reserve(n);
    ds.combine.reserve(n);
    ds.dense.reserve(n * DENSE_FEATURES);
    ds.seq_item.reserve(n * t);
    ds.seq_cat.reserve(n * t);
    ds.seq_brand.reserve(n * t);
    ds.seq_tp.reserve(n * t);
    ds.seq_hour.reserve(n * t);
    ds.seq_city.reserve(n * t);
    ds.seq_geo.reserve(n * t);
    ds.seq_st_flag.reserve(n * t);
    ds.seq_used.reserve(n);
}

/// Summarize the most recent `t` events against a candidate category and the
/// current time-period.
fn summarize(history: &VecDeque<Event>, cat: u16, tp: TimePeriod, t: usize) -> BehaviorSummary {
    let recent = history.len().min(t);
    if recent == 0 {
        return BehaviorSummary::default();
    }
    let mut cat_hits = 0usize;
    let mut cat_tp_hits = 0usize;
    for ev in history.iter().rev().take(recent) {
        if ev.cat == cat {
            cat_hits += 1;
            if ev.tp as usize == tp.index() {
                cat_tp_hits += 1;
            }
        }
    }
    BehaviorSummary {
        cat_affinity: cat_hits as f32 / recent as f32,
        cat_tp_affinity: cat_tp_hits as f32 / recent as f32,
    }
}

/// Materialize one impression into a dataset: ids, dense statistics, combine
/// cross features and the behavior-sequence snapshot. This is the single
/// feature-engineering path shared by offline log generation and the online
/// serving simulator.
#[allow(clippy::too_many_arguments)]
pub fn append_example(
    ds: &mut Dataset,
    world: &World,
    uid: usize,
    iid: u32,
    ctx: Context,
    session: u32,
    label: bool,
    true_prob: f32,
    history: &VecDeque<BehaviorEvent>,
    counters: &StatCounters,
) {
    let cfg = &world.config;
    let user = &world.users[uid];
    let item = &world.items[iid as usize];
    let t = cfg.seq_len;

    ds.label.push(if label { 1.0 } else { 0.0 });
    ds.true_prob.push(true_prob);
    ds.day.push(ctx.day);
    ds.session.push(session);
    ds.hour.push(ctx.hour);
    ds.tp.push(ctx.tp.index() as u8);
    ds.city.push(ctx.city);
    ds.geohash.push(world.geohash_id(ctx.city, ctx.geo));
    ds.position.push(ctx.position);
    ds.user.push(uid as u32);
    ds.item.push(iid);
    ds.category.push(item.category);
    ds.brand.push(item.brand);

    // Combine cross feature: category relation x price-match bucket x city tier.
    let cat_rel: u16 = if item.category == user.fav_category {
        2
    } else if item.category == user.alt_category {
        1
    } else {
        0
    };
    let price_bucket = ((user.price_pref - item.price_tier).abs() as u16).min(4);
    let city_tier: u16 = u16::from(world.cities[ctx.city as usize].user_share <= 0.15);
    let combine = cat_rel * 10 + price_bucket * 2 + city_tier;
    debug_assert!((combine as usize) < Dataset::COMBINE_CARD);
    ds.combine.push(combine);

    // Dense statistics (as-of-impression-time, normalized to ~unit scale).
    let dist = world.geo_distance(ctx.geo, item.geo);
    let exposures = counters.item_exposures[iid as usize];
    let item_ctr = counters.item_clicks[iid as usize] as f32 / (exposures as f32 + 10.0);
    ds.dense.extend_from_slice(&[
        (counters.user_clicks[uid] as f32).ln_1p() / 5.0,
        (counters.user_orders[uid] as f32).ln_1p() / 5.0,
        user.activity / 2.0,
        item_ctr * 10.0,
        (counters.item_clicks[iid as usize] as f32).ln_1p() / 6.0,
        item.price_tier / 4.0,
        dist,
        ctx.position as f32 / cfg.candidates_per_session as f32,
    ]);
    debug_assert_eq!(ds.dense.len(), ds.label.len() * DENSE_FEATURES);

    // Behavior sequence: most recent first, padded with 0.
    let used = history.len().min(t);
    ds.seq_used.push(used as u8);
    let mut wrote = 0usize;
    for ev in history.iter().rev().take(used) {
        ds.seq_item.push(ev.item + 1);
        ds.seq_cat.push(ev.cat + 1);
        ds.seq_brand.push(ev.brand + 1);
        ds.seq_tp.push(ev.tp + 1);
        ds.seq_hour.push(ev.hour + 1);
        ds.seq_city.push(ev.city + 1);
        ds.seq_geo.push(world.geohash_id(ev.city, (ev.gx, ev.gy)) + 1);
        let same_tp = ev.tp as usize == ctx.tp.index();
        let nearby = ev.city == ctx.city
            && (ev.gx as i32 - ctx.geo.0 as i32).abs() <= 2
            && (ev.gy as i32 - ctx.geo.1 as i32).abs() <= 2;
        ds.seq_st_flag.push(u8::from(same_tp && nearby));
        wrote += 1;
    }
    for _ in wrote..t {
        ds.seq_item.push(0);
        ds.seq_cat.push(0);
        ds.seq_brand.push(0);
        ds.seq_tp.push(0);
        ds.seq_hour.push(0);
        ds.seq_city.push(0);
        ds.seq_geo.push(0);
        ds.seq_st_flag.push(0);
    }
}

/// The user/context-side half of an assembled serving example: every column
/// of [`append_example`] that depends only on `(uid, ctx, history, user
/// counters)` — never on the candidate item.
///
/// This is the unit the serving memo tier (`basm-serving`'s `memo` module)
/// caches: within a session the tuple `(uid, geohash cell, hour)` repeats
/// while the behavior sequence stays put, so the expensive part of assembly
/// (the 7-column sequence encoding plus the spatiotemporal-match flags) can
/// be built once and replayed. Item-side columns (item/category/brand/combine
/// ids, distance, and the item statistics that change on **every** exposure
/// write-back) are recomputed per candidate by
/// [`append_example_from_block`] — that split is what lets a cached block
/// survive the request's own exposure recording.
///
/// Bitwise contract: [`append_example_from_block`] over a block built by
/// [`UserBlock::build`] pushes exactly the bytes [`append_example`] pushes
/// for the same inputs (pinned by `block_path_matches_append_example`).
#[derive(Debug, Clone)]
pub struct UserBlock {
    /// Requesting user.
    pub uid: u32,
    /// Request context the block was built under (position forced to 0, the
    /// serving convention of `score_candidates`).
    pub ctx: Context,
    /// Global geohash id of `ctx`'s cell.
    pub geohash: u32,
    /// The three user-side dense statistics, exactly as [`append_example`]
    /// computes them: `ln_1p(user_clicks)/5`, `ln_1p(user_orders)/5`,
    /// `activity/2`.
    pub dense_user: [f32; 3],
    /// The position dense feature (`position / candidates_per_session`;
    /// always `0.0` at serving time).
    pub dense_pos: f32,
    /// Sequence item ids (`+1`, 0 = pad), length `seq_len`.
    pub seq_item: Vec<u32>,
    /// Sequence category ids (`+1`, 0 = pad).
    pub seq_cat: Vec<u16>,
    /// Sequence brand ids (`+1`, 0 = pad).
    pub seq_brand: Vec<u16>,
    /// Sequence time-period ids (`+1`, 0 = pad).
    pub seq_tp: Vec<u8>,
    /// Sequence hour ids (`+1`, 0 = pad).
    pub seq_hour: Vec<u8>,
    /// Sequence city ids (`+1`, 0 = pad).
    pub seq_city: Vec<u16>,
    /// Sequence geohash ids (`+1`, 0 = pad).
    pub seq_geo: Vec<u32>,
    /// Per-position spatiotemporal-match flag (StSTL's filter).
    pub seq_st_flag: Vec<u8>,
    /// Valid prefix length of the sequence.
    pub seq_used: u8,
}

impl UserBlock {
    /// Build the user/context half of a serving example — the same
    /// computation [`append_example`] performs for these columns, hoisted
    /// out of the per-candidate loop.
    pub fn build(
        world: &World,
        uid: usize,
        ctx: Context,
        history: &VecDeque<BehaviorEvent>,
        counters: &StatCounters,
    ) -> Self {
        let cfg = &world.config;
        let user = &world.users[uid];
        let t = cfg.seq_len;
        let ctx = Context { position: 0, ..ctx };

        let mut block = Self {
            uid: uid as u32,
            ctx,
            geohash: world.geohash_id(ctx.city, ctx.geo),
            dense_user: [
                (counters.user_clicks[uid] as f32).ln_1p() / 5.0,
                (counters.user_orders[uid] as f32).ln_1p() / 5.0,
                user.activity / 2.0,
            ],
            dense_pos: ctx.position as f32 / cfg.candidates_per_session as f32,
            seq_item: Vec::with_capacity(t),
            seq_cat: Vec::with_capacity(t),
            seq_brand: Vec::with_capacity(t),
            seq_tp: Vec::with_capacity(t),
            seq_hour: Vec::with_capacity(t),
            seq_city: Vec::with_capacity(t),
            seq_geo: Vec::with_capacity(t),
            seq_st_flag: Vec::with_capacity(t),
            seq_used: 0,
        };

        // Behavior sequence: most recent first, padded with 0 — byte-for-byte
        // the loop in `append_example`.
        let used = history.len().min(t);
        block.seq_used = used as u8;
        let mut wrote = 0usize;
        for ev in history.iter().rev().take(used) {
            block.seq_item.push(ev.item + 1);
            block.seq_cat.push(ev.cat + 1);
            block.seq_brand.push(ev.brand + 1);
            block.seq_tp.push(ev.tp + 1);
            block.seq_hour.push(ev.hour + 1);
            block.seq_city.push(ev.city + 1);
            block.seq_geo.push(world.geohash_id(ev.city, (ev.gx, ev.gy)) + 1);
            let same_tp = ev.tp as usize == ctx.tp.index();
            let nearby = ev.city == ctx.city
                && (ev.gx as i32 - ctx.geo.0 as i32).abs() <= 2
                && (ev.gy as i32 - ctx.geo.1 as i32).abs() <= 2;
            block.seq_st_flag.push(u8::from(same_tp && nearby));
            wrote += 1;
        }
        for _ in wrote..t {
            block.seq_item.push(0);
            block.seq_cat.push(0);
            block.seq_brand.push(0);
            block.seq_tp.push(0);
            block.seq_hour.push(0);
            block.seq_city.push(0);
            block.seq_geo.push(0);
            block.seq_st_flag.push(0);
        }
        block
    }

    /// Approximate heap footprint of one block (capacity accounting for the
    /// memo tier).
    pub fn heap_bytes(&self) -> usize {
        self.seq_item.capacity() * 4
            + self.seq_cat.capacity() * 2
            + self.seq_brand.capacity() * 2
            + self.seq_tp.capacity()
            + self.seq_hour.capacity()
            + self.seq_city.capacity() * 2
            + self.seq_geo.capacity() * 4
            + self.seq_st_flag.capacity()
    }
}

/// Materialize one *serving* impression from a cached [`UserBlock`] plus a
/// candidate item: the user/context columns are replayed from the block and
/// the item-side columns (ids, combine cross feature, distance, and the
/// exposure/click statistics that move on every request) are computed fresh
/// against the **current** `counters`.
///
/// Serving constants match [`append_example`] as `score_candidates` calls
/// it: `label = false`, `true_prob = 0.0`, `session = 0`, `position = 0`.
pub fn append_example_from_block(
    ds: &mut Dataset,
    world: &World,
    block: &UserBlock,
    iid: u32,
    counters: &StatCounters,
) {
    let user = &world.users[block.uid as usize];
    let item = &world.items[iid as usize];
    let ctx = block.ctx;

    ds.label.push(0.0);
    ds.true_prob.push(0.0);
    ds.day.push(ctx.day);
    ds.session.push(0);
    ds.hour.push(ctx.hour);
    ds.tp.push(ctx.tp.index() as u8);
    ds.city.push(ctx.city);
    ds.geohash.push(block.geohash);
    ds.position.push(ctx.position);
    ds.user.push(block.uid);
    ds.item.push(iid);
    ds.category.push(item.category);
    ds.brand.push(item.brand);

    // Combine cross feature — identical arithmetic to `append_example`.
    let cat_rel: u16 = if item.category == user.fav_category {
        2
    } else if item.category == user.alt_category {
        1
    } else {
        0
    };
    let price_bucket = ((user.price_pref - item.price_tier).abs() as u16).min(4);
    let city_tier: u16 = u16::from(world.cities[ctx.city as usize].user_share <= 0.15);
    let combine = cat_rel * 10 + price_bucket * 2 + city_tier;
    debug_assert!((combine as usize) < Dataset::COMBINE_CARD);
    ds.combine.push(combine);

    // Dense row: cached user-side values + fresh item-side statistics.
    let dist = world.geo_distance(ctx.geo, item.geo);
    let exposures = counters.item_exposures[iid as usize];
    let item_ctr = counters.item_clicks[iid as usize] as f32 / (exposures as f32 + 10.0);
    ds.dense.extend_from_slice(&[
        block.dense_user[0],
        block.dense_user[1],
        block.dense_user[2],
        item_ctr * 10.0,
        (counters.item_clicks[iid as usize] as f32).ln_1p() / 6.0,
        item.price_tier / 4.0,
        dist,
        block.dense_pos,
    ]);
    debug_assert_eq!(ds.dense.len(), ds.label.len() * DENSE_FEATURES);

    ds.seq_used.push(block.seq_used);
    ds.seq_item.extend_from_slice(&block.seq_item);
    ds.seq_cat.extend_from_slice(&block.seq_cat);
    ds.seq_brand.extend_from_slice(&block.seq_brand);
    ds.seq_tp.extend_from_slice(&block.seq_tp);
    ds.seq_hour.extend_from_slice(&block.seq_hour);
    ds.seq_city.extend_from_slice(&block.seq_city);
    ds.seq_geo.extend_from_slice(&block.seq_geo);
    ds.seq_st_flag.extend_from_slice(&block.seq_st_flag);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_volume() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        assert_eq!(data.dataset.len(), cfg.expected_impressions());
    }

    #[test]
    fn deterministic_generation() {
        let cfg = WorldConfig::tiny();
        let a = generate_dataset(&cfg).dataset;
        let b = generate_dataset(&cfg).dataset;
        assert_eq!(a.label, b.label);
        assert_eq!(a.seq_item, b.seq_item);
        assert_eq!(a.dense, b.dense);
    }

    #[test]
    fn ctr_in_plausible_band() {
        let ctr = generate_dataset(&WorldConfig::tiny()).dataset.ctr();
        assert!(ctr > 0.01 && ctr < 0.5, "tiny CTR {ctr}");
    }

    #[test]
    fn days_are_zero_based_and_complete() {
        let cfg = WorldConfig::tiny();
        let ds = generate_dataset(&cfg).dataset;
        let max_day = *ds.day.iter().max().unwrap() as usize;
        let min_day = *ds.day.iter().min().unwrap() as usize;
        assert_eq!(min_day, 0);
        assert_eq!(max_day, cfg.recorded_days() - 1);
    }

    #[test]
    fn sequences_are_warm_from_day_one() {
        // The history bootstrap means even day-0 impressions carry meaningful
        // sequences, and they stay populated through the last day.
        let cfg = WorldConfig::tiny();
        let ds = generate_dataset(&cfg).dataset;
        let first_day_avg: f32 = avg_seq(&ds, 0);
        let last_day_avg: f32 = avg_seq(&ds, cfg.recorded_days() as u16 - 1);
        assert!(first_day_avg > 1.0, "bootstrap should warm histories: {first_day_avg}");
        assert!(last_day_avg > 1.0, "histories should stay warm: {last_day_avg}");
        fn avg_seq(ds: &Dataset, day: u16) -> f32 {
            let (sum, n) = ds
                .day
                .iter()
                .zip(ds.seq_used.iter())
                .filter(|(&d, _)| d == day)
                .fold((0f32, 0usize), |(s, n), (_, &u)| (s + u as f32, n + 1));
            sum / n.max(1) as f32
        }
    }

    #[test]
    fn st_flag_only_on_valid_positions() {
        let ds = generate_dataset(&WorldConfig::tiny()).dataset;
        for (i, &flag) in ds.seq_st_flag.iter().enumerate() {
            if flag != 0 {
                assert_ne!(ds.seq_item[i], 0, "st flag on padded position {i}");
            }
        }
    }

    #[test]
    fn positive_labels_follow_higher_true_prob() {
        let ds = generate_dataset(&WorldConfig::tiny()).dataset;
        let pos_mean: f64 = mean_prob(&ds, 1.0);
        let neg_mean: f64 = mean_prob(&ds, 0.0);
        assert!(
            pos_mean > neg_mean,
            "clicked impressions should have higher ground-truth p: {pos_mean} vs {neg_mean}"
        );
        fn mean_prob(ds: &Dataset, label: f32) -> f64 {
            let (sum, n) = ds
                .label
                .iter()
                .zip(ds.true_prob.iter())
                .filter(|(&l, _)| l == label)
                .fold((0f64, 0usize), |(s, n), (_, &p)| (s + p as f64, n + 1));
            sum / n.max(1) as f64
        }
    }

    /// The memo tier's correctness root: assembling a serving example from a
    /// cached [`UserBlock`] must push exactly the bytes `append_example`
    /// pushes — every column, every f32 bit — across histories of every
    /// length (empty, short, overflowing `seq_len`) and non-trivial counters.
    #[test]
    fn block_path_matches_append_example() {
        let cfg = WorldConfig::tiny();
        let world = World::generate(cfg.clone());
        let mut counters = StatCounters::new(cfg.n_users, cfg.n_items);
        for u in 0..cfg.n_users {
            counters.user_clicks[u] = (u as u32 * 13) % 37;
            counters.user_orders[u] = (u as u32 * 5) % 11;
        }
        for i in 0..cfg.n_items {
            counters.item_clicks[i] = (i as u32 * 7) % 23;
            counters.item_exposures[i] = (i as u32 * 11) % 101;
        }
        let mut rng = Prng::seeded(77);
        let ev = |rng: &mut Prng| BehaviorEvent {
            item: rng.below(cfg.n_items) as u32,
            cat: rng.below(cfg.n_categories) as u16,
            brand: rng.below(cfg.n_brands) as u16,
            tp: rng.below(5) as u8,
            hour: rng.below(24) as u8,
            city: rng.below(cfg.n_cities) as u16,
            gx: rng.below(cfg.geo_grid) as u8,
            gy: rng.below(cfg.geo_grid) as u8,
        };
        for hist_len in [0usize, 1, 3, cfg.seq_len, 3 * cfg.seq_len] {
            let uid = rng.below(cfg.n_users);
            let history: VecDeque<BehaviorEvent> =
                (0..hist_len).map(|_| ev(&mut rng)).collect();
            let hour = rng.below(24) as u8;
            let ctx = Context {
                day: rng.below(7) as u16,
                hour,
                tp: TimePeriod::from_hour(hour),
                city: world.users[uid].city,
                geo: (rng.below(cfg.geo_grid) as u8, rng.below(cfg.geo_grid) as u8),
                position: 0,
            };
            let candidates: Vec<u32> =
                (0..8).map(|_| rng.below(cfg.n_items) as u32).collect();

            let mut direct = Dataset::empty(cfg.clone());
            for &iid in &candidates {
                append_example(
                    &mut direct, &world, uid, iid, ctx, 0, false, 0.0, &history, &counters,
                );
            }
            let block = UserBlock::build(&world, uid, ctx, &history, &counters);
            let mut via_block = Dataset::empty(cfg.clone());
            for &iid in &candidates {
                append_example_from_block(&mut via_block, &world, &block, iid, &counters);
            }

            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
            assert_eq!(bits(&direct.label), bits(&via_block.label));
            assert_eq!(bits(&direct.true_prob), bits(&via_block.true_prob));
            assert_eq!(direct.day, via_block.day);
            assert_eq!(direct.session, via_block.session);
            assert_eq!(direct.hour, via_block.hour);
            assert_eq!(direct.tp, via_block.tp);
            assert_eq!(direct.city, via_block.city);
            assert_eq!(direct.geohash, via_block.geohash);
            assert_eq!(direct.position, via_block.position);
            assert_eq!(direct.user, via_block.user);
            assert_eq!(direct.item, via_block.item);
            assert_eq!(direct.category, via_block.category);
            assert_eq!(direct.brand, via_block.brand);
            assert_eq!(direct.combine, via_block.combine);
            assert_eq!(bits(&direct.dense), bits(&via_block.dense), "dense @ len {hist_len}");
            assert_eq!(direct.seq_item, via_block.seq_item);
            assert_eq!(direct.seq_cat, via_block.seq_cat);
            assert_eq!(direct.seq_brand, via_block.seq_brand);
            assert_eq!(direct.seq_tp, via_block.seq_tp);
            assert_eq!(direct.seq_hour, via_block.seq_hour);
            assert_eq!(direct.seq_city, via_block.seq_city);
            assert_eq!(direct.seq_geo, via_block.seq_geo);
            assert_eq!(direct.seq_st_flag, via_block.seq_st_flag);
            assert_eq!(direct.seq_used, via_block.seq_used);
        }
    }

    #[test]
    fn weighted_sampler_respects_mass() {
        let sampler = WeightedSampler::new([0.0, 1.0, 3.0].into_iter());
        let mut rng = Prng::seeded(5);
        let mut hits = [0usize; 3];
        for _ in 0..20_000 {
            hits[sampler.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[0], 0);
        assert!(hits[2] > 2 * hits[1]);
    }
}
