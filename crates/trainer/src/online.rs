//! Online (streaming) training with progressive validation.
//!
//! Ele.me's production models train continuously on the impression stream
//! (the reason the paper uses AdagradDecay \[25\]: plain Adagrad's effective
//! learning rate collapses on never-ending jobs). This module replays the
//! recorded log day by day: each day is first *predicted* (progressive
//! validation — every example is scored before the model trains on it) and
//! then trained on. The result is a per-day metric trajectory with no
//! train/test leakage.

use basm_core::model::{train_step, CtrModel};
use basm_data::Dataset;
use basm_metrics::{EvalAccumulator, MetricReport};
use basm_tensor::optim::{AdagradDecay, LrSchedule};
use basm_tensor::Prng;
use serde::{Deserialize, Serialize};

/// One day of the online trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineDay {
    /// 0-based day index in the recorded log.
    pub day: usize,
    /// Metrics on the day's traffic *before* training on it.
    pub report: MetricReport,
    /// Mean training loss over the day's batches.
    pub train_loss: f64,
}

/// Full online-training outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Model name.
    pub model: String,
    /// Per-day trajectory.
    pub days: Vec<OnlineDay>,
}

impl OnlineOutcome {
    /// Impression-weighted average report over days `skip..` (skipping the
    /// cold-start days where every model predicts noise).
    pub fn steady_state(&self, skip: usize) -> Option<MetricReport> {
        let tail: Vec<MetricReport> =
            self.days.iter().skip(skip).map(|d| d.report).collect();
        (!tail.is_empty()).then(|| MetricReport::average(&tail))
    }
}

/// Stream the recorded days through the model: predict day `d`, then train
/// on it, then move to day `d+1`.
pub fn train_online(
    model: &mut dyn CtrModel,
    ds: &Dataset,
    batch_size: usize,
    schedule: LrSchedule,
    seed: u64,
) -> OnlineOutcome {
    let n_days = ds.config.recorded_days();
    let mut rng = Prng::seeded(seed ^ 0x0D1);
    let mut opt = AdagradDecay::paper_default();
    let mut step: u64 = 0;
    let mut days = Vec::with_capacity(n_days);

    for day in 0..n_days {
        let day_idx: Vec<usize> =
            (0..ds.len()).filter(|&i| ds.day[i] as usize == day).collect();
        if day_idx.is_empty() {
            continue;
        }
        // Progressive validation: score the day before training on it.
        let mut acc = EvalAccumulator::new();
        for chunk in day_idx.chunks(batch_size) {
            let batch = ds.batch(chunk);
            let probs = basm_core::model::predict(model, &batch);
            acc.push_batch(
                &probs,
                batch.labels.data(),
                batch.tp_raw.iter().map(|&t| t as u32),
                batch.city_raw.iter().map(|&c| c as u32),
                batch.session.iter().copied(),
            );
        }
        let report = acc.report();

        // Then consume the day as training data (shuffled within the day, as
        // a production job's intra-day buffer would).
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in ds.shuffled_batches(&day_idx, batch_size, &mut rng) {
            let batch = ds.batch(&chunk);
            loss_sum +=
                train_step(model, &batch, &mut opt, schedule.at(step), Some(10.0)) as f64;
            step += 1;
            batches += 1;
        }
        // End-of-day durability point: when the embedding store is
        // pack-backed, append the day's row updates to the delta files so a
        // crash between days replays cleanly on reopen. RAM stores no-op.
        let flushed = model
            .embedder()
            .emb
            .flush_deltas()
            .expect("flushing embedding deltas");
        if flushed > 0 {
            basm_obs::counter_add("trainer.delta_rows_flushed", flushed as u64);
        }
        days.push(OnlineDay {
            day,
            report,
            train_loss: loss_sum / batches.max(1) as f64,
        });
    }
    OnlineOutcome { model: model.name().to_string(), days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basm_baselines::build_model;
    use basm_data::{generate_dataset, WorldConfig};

    #[test]
    fn trajectory_covers_every_day_and_improves() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let ds = &data.dataset;
        let mut model = build_model("AutoInt", &ds.config, 1);
        let out = train_online(
            model.as_mut(),
            ds,
            128,
            LrSchedule::Constant(0.02),
            1,
        );
        assert_eq!(out.days.len(), cfg.recorded_days());
        // Day 0 is scored by an untrained model; later days by a trained one.
        let first = out.days.first().unwrap().report.auc;
        let last = out.days.last().unwrap().report.auc;
        assert!(
            last > first,
            "progressive validation should improve: {first:.4} -> {last:.4}"
        );
    }

    #[test]
    fn steady_state_skips_cold_start() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut model = build_model("Wide&Deep", &data.dataset.config, 1);
        let out = train_online(
            model.as_mut(),
            &data.dataset,
            128,
            LrSchedule::Constant(0.02),
            1,
        );
        let all = out.steady_state(0).unwrap();
        let warm = out.steady_state(1).unwrap();
        assert!(warm.auc >= all.auc, "cold start should drag the average down");
        assert!(out.steady_state(out.days.len()).is_none());
    }

    #[test]
    fn no_leakage_first_day_is_near_random() {
        // The very first progressive-validation day is scored by an untrained
        // model: AUC must be near 0.5, proving no peeking.
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut model = build_model("DIN", &data.dataset.config, 3);
        let out = train_online(
            model.as_mut(),
            &data.dataset,
            128,
            LrSchedule::Constant(0.02),
            1,
        );
        let first = out.days.first().unwrap().report.auc;
        assert!((0.35..0.68).contains(&first), "untrained day-0 AUC {first}");
    }
}
