//! Table VI accounting: wall-clock time per epoch and training memory.
//!
//! Memory = dense params (+grads) + embedding tables (+Adagrad state) +
//! dense-optimizer state + peak activation memory actually measured on a
//! training-step tape.

use basm_core::model::{train_step, CtrModel};
use basm_data::Dataset;
use basm_tensor::optim::{AdagradDecay, Optimizer};
use basm_tensor::{Graph, Prng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One Table VI row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyReport {
    /// Model name.
    pub model: String,
    /// Wall-clock seconds for one epoch over the training split.
    pub secs_per_epoch: f64,
    /// Total trainable scalars (dense + sparse).
    pub num_params: usize,
    /// Total training memory in bytes (params, grads, optimizer state,
    /// measured activation tape).
    pub memory_bytes: usize,
    /// The activation-tape component alone.
    pub activation_bytes: usize,
}

impl EfficiencyReport {
    /// Memory in the paper's unit (GB would be silly at this scale; MB).
    pub fn memory_mb(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Measure one model: a full epoch of training plus an activation-memory
/// probe on one batch.
pub fn measure_efficiency(
    model: &mut dyn CtrModel,
    ds: &Dataset,
    batch_size: usize,
    lr: f32,
) -> EfficiencyReport {
    let train_idx = ds.train_indices();
    let mut rng = Prng::seeded(0xEFF1);
    let mut opt = AdagradDecay::paper_default();

    // Activation probe: one forward+backward tape at full batch size.
    let probe: Vec<usize> = train_idx.iter().copied().take(batch_size).collect();
    let batch = ds.batch(&probe);
    let mut g = Graph::new();
    let fwd = model.forward(&mut g, &batch, true);
    let labels = g.input(batch.labels.clone());
    let loss = g.bce_with_logits(fwd.logits, labels);
    g.backward(loss);
    let activation_bytes = g.memory_bytes();
    model.params().zero_grads();
    model.clear_journals();

    // Timed epoch.
    let start = Instant::now();
    for chunk in ds.shuffled_batches(&train_idx, batch_size, &mut rng) {
        let b = ds.batch(&chunk);
        train_step(model, &b, &mut opt, lr, Some(10.0));
    }
    let secs_per_epoch = start.elapsed().as_secs_f64();

    let num_params = model.num_params();
    let memory_bytes = model.memory_bytes() + opt.state_bytes() + activation_bytes;
    EfficiencyReport {
        model: model.name().to_string(),
        secs_per_epoch,
        num_params,
        memory_bytes,
        activation_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basm_baselines::build_model;
    use basm_data::{generate_dataset, WorldConfig};

    #[test]
    fn efficiency_measures_are_positive() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut model = build_model("DIN", &cfg, 1);
        let rep = measure_efficiency(model.as_mut(), &data.dataset, 128, 0.01);
        assert!(rep.secs_per_epoch > 0.0);
        assert!(rep.num_params > 10_000);
        assert!(rep.activation_bytes > 0);
        assert!(rep.memory_bytes > rep.activation_bytes);
    }

    #[test]
    fn dynamic_models_cost_more_than_static() {
        // The Table VI ordering at the memory level: APG's generated
        // full matrices dominate DIN's static tower.
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut apg = build_model("APG", &cfg, 1);
        let mut din = build_model("DIN", &cfg, 1);
        let ra = measure_efficiency(apg.as_mut(), &data.dataset, 64, 0.01);
        let rd = measure_efficiency(din.as_mut(), &data.dataset, 64, 0.01);
        assert!(
            ra.activation_bytes > rd.activation_bytes,
            "APG {} vs DIN {}",
            ra.activation_bytes,
            rd.activation_bytes
        );
    }
}
