//! The paper's five-repetition protocol: train the same configuration under
//! several seeds and average the metric reports (§III-A4).

use basm_data::{Dataset, WorldConfig};
use basm_metrics::MetricReport;
use basm_tensor::pool;
use serde::{Deserialize, Serialize};

use crate::harness::{train_and_evaluate, TrainConfig, TrainOutcome};

/// Averaged outcome of repeated runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedOutcome {
    /// Model name.
    pub model: String,
    /// Per-seed outcomes.
    pub runs: Vec<TrainOutcome>,
    /// Metric report averaged over seeds.
    pub mean: MetricReport,
}

/// Train `model_name` under each seed and average.
///
/// Seeds are data-parallel: each run owns its model, RNG state and tape, so
/// runs fan out across the thread pool ([`pool::par_map`] keeps outputs in
/// seed order, and kernels inside a worker degrade to their serial path).
/// Results are bitwise identical to the sequential loop for any thread count.
pub fn run_repeated(
    model_name: &str,
    world: &WorldConfig,
    ds: &Dataset,
    epochs: usize,
    batch_size: usize,
    seeds: &[u64],
) -> RepeatedOutcome {
    assert!(!seeds.is_empty(), "run_repeated: need at least one seed");
    let runs = pool::par_map(seeds, |&seed| {
        let mut model = basm_baselines::build_model(model_name, world, seed);
        let tc = TrainConfig::default_for(ds, epochs, batch_size, seed);
        train_and_evaluate(model.as_mut(), ds, &tc)
    });
    let reports: Vec<MetricReport> = runs.iter().map(|r| r.report).collect();
    RepeatedOutcome {
        model: model_name.to_string(),
        mean: MetricReport::average(&reports),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basm_data::generate_dataset;

    #[test]
    fn repeats_and_averages() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let out = run_repeated("Wide&Deep", &cfg, &data.dataset, 1, 128, &[1, 2]);
        assert_eq!(out.runs.len(), 2);
        let manual = (out.runs[0].report.auc + out.runs[1].report.auc) / 2.0;
        assert!((out.mean.auc - manual).abs() < 1e-12);
    }

    #[test]
    fn parallel_repeat_matches_serial() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        pool::set_threads(1);
        let serial = run_repeated("Wide&Deep", &cfg, &data.dataset, 1, 128, &[3, 4]);
        pool::set_threads(4);
        let parallel = run_repeated("Wide&Deep", &cfg, &data.dataset, 1, 128, &[3, 4]);
        pool::set_threads(0);
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (s, p) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(s.report.auc.to_bits(), p.report.auc.to_bits());
            assert_eq!(s.report.logloss.to_bits(), p.report.logloss.to_bits());
        }
        assert_eq!(serial.mean.auc.to_bits(), parallel.mean.auc.to_bits());
    }
}
