//! The paper's five-repetition protocol: train the same configuration under
//! several seeds and average the metric reports (§III-A4).

use basm_data::{Dataset, WorldConfig};
use basm_metrics::MetricReport;
use serde::{Deserialize, Serialize};

use crate::harness::{train_and_evaluate, TrainConfig, TrainOutcome};

/// Averaged outcome of repeated runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatedOutcome {
    /// Model name.
    pub model: String,
    /// Per-seed outcomes.
    pub runs: Vec<TrainOutcome>,
    /// Metric report averaged over seeds.
    pub mean: MetricReport,
}

/// Train `model_name` under each seed and average.
pub fn run_repeated(
    model_name: &str,
    world: &WorldConfig,
    ds: &Dataset,
    epochs: usize,
    batch_size: usize,
    seeds: &[u64],
) -> RepeatedOutcome {
    assert!(!seeds.is_empty(), "run_repeated: need at least one seed");
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut model = basm_baselines::build_model(model_name, world, seed);
        let tc = TrainConfig::default_for(ds, epochs, batch_size, seed);
        runs.push(train_and_evaluate(model.as_mut(), ds, &tc));
    }
    let reports: Vec<MetricReport> = runs.iter().map(|r| r.report).collect();
    RepeatedOutcome {
        model: model_name.to_string(),
        mean: MetricReport::average(&reports),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basm_data::generate_dataset;

    #[test]
    fn repeats_and_averages() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let out = run_repeated("Wide&Deep", &cfg, &data.dataset, 1, 128, &[1, 2]);
        assert_eq!(out.runs.len(), 2);
        let manual = (out.runs[0].report.auc + out.runs[1].report.auc) / 2.0;
        assert!((out.mean.auc - manual).abs() < 1e-12);
    }
}
