//! # basm-trainer
//!
//! The offline training/evaluation harness: the paper's protocol (§III-A4) —
//! AdagradDecay with linear warmup 0.001→0.012, batch 1024, N train days +
//! 1 test day, metrics averaged over five seeded repetitions — plus the
//! wall-clock and memory accounting behind Table VI.

pub mod efficiency;
pub mod harness;
pub mod online;
pub mod repeat;

pub use efficiency::{measure_efficiency, EfficiencyReport};
pub use harness::{evaluate, train, train_and_evaluate, TrainConfig, TrainOutcome, TRAIN_LOG_STREAM};
pub use online::{train_online, OnlineDay, OnlineOutcome};
pub use repeat::{run_repeated, RepeatedOutcome};
