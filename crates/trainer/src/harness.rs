//! Train/evaluate loop over a [`Dataset`].

use basm_core::model::{predict, train_step_checked, CtrModel};
use basm_data::Dataset;
use basm_metrics::{EvalAccumulator, MetricReport};
use basm_tensor::optim::{AdagradDecay, LrSchedule};
use basm_tensor::Prng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Offline training protocol parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training days.
    pub epochs: usize,
    /// Minibatch size (the paper uses 1024).
    pub batch_size: usize,
    /// Learning-rate schedule; [`TrainConfig::default_for`] scales the
    /// paper's warmup to the dataset.
    pub schedule: LrSchedule,
    /// Global-norm gradient clip.
    pub grad_clip: Option<f64>,
    /// Shuffling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's protocol scaled to a dataset: warmup over the first 40%
    /// of total steps.
    pub fn default_for(ds: &Dataset, epochs: usize, batch_size: usize, seed: u64) -> Self {
        let steps_per_epoch = ds.train_indices().len().div_ceil(batch_size) as u64;
        let warmup = (steps_per_epoch * epochs as u64) * 2 / 5;
        Self {
            epochs,
            batch_size,
            schedule: LrSchedule::paper_warmup(warmup.max(1)),
            grad_clip: Some(10.0),
            seed,
        }
    }
}

/// Everything a training run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// The model's Table IV row label.
    pub model: String,
    /// Test-set metrics.
    pub report: MetricReport,
    /// Wall-clock training time.
    pub train_secs: f64,
    /// Optimization steps taken.
    pub steps: u64,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f64,
}

/// Name of the [`basm_obs::jsonl`] stream the trainer writes per-step
/// records to. Experiment binaries opt in with
/// `basm_obs::jsonl::open_stream(TRAIN_LOG_STREAM, "results/train_log.jsonl")`;
/// without that call (and the `obs` feature) training emits nothing.
///
/// Each step record carries `step`, `epoch`, `loss`, `lr`, `grad_norm`
/// (post-clip global norm) and `examples_per_sec`; one final record with
/// `"event": "summary"` closes the run (total steps, wall seconds, mean
/// final-epoch loss, aggregate throughput).
pub const TRAIN_LOG_STREAM: &str = "train";

/// Train a model in place (no evaluation). Returns `(steps, mean loss of the
/// final epoch)`.
pub fn train(
    model: &mut dyn CtrModel,
    ds: &Dataset,
    cfg: &TrainConfig,
) -> (u64, f64) {
    let _span = basm_obs::span!("trainer.train", epochs = cfg.epochs, batch = cfg.batch_size);
    let train_idx = ds.train_indices();
    assert!(!train_idx.is_empty(), "no training examples");
    // Resolved once: the stream can only be opened before training starts.
    let log_steps = basm_obs::jsonl::stream_open(TRAIN_LOG_STREAM);
    let run_start = Instant::now();
    let mut rng = Prng::seeded(cfg.seed ^ 0x7EA1_B00C);
    let mut opt = AdagradDecay::paper_default();
    let mut step: u64 = 0;
    let mut examples: u64 = 0;
    let mut last_epoch_loss = 0.0f64;
    for epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in ds.shuffled_batches(&train_idx, cfg.batch_size, &mut rng) {
            let step_start = Instant::now();
            let batch = ds.batch(&chunk);
            let lr = cfg.schedule.at(step);
            let out = train_step_checked(model, &batch, &mut opt, lr, cfg.grad_clip);
            if out.applied {
                epoch_loss += out.loss as f64;
                batches += 1;
            } else {
                // A NaN/Inf loss or gradient norm: the step was skipped and
                // the model left untouched. Count it and keep training —
                // one poisoned batch must not take the run down.
                basm_obs::counter_add("trainer.nonfinite_skips", 1);
            }
            step += 1;
            examples += chunk.len() as u64;
            let step_secs = step_start.elapsed().as_secs_f64();
            basm_obs::record_hist("trainer.step_ns", (step_secs * 1e9) as u64);
            if log_steps {
                basm_obs::jsonl::emit(
                    TRAIN_LOG_STREAM,
                    &[
                        ("step", step.into()),
                        ("epoch", (epoch as u64).into()),
                        ("loss", out.loss.into()),
                        ("lr", lr.into()),
                        ("grad_norm", out.grad_norm.into()),
                        ("examples_per_sec", (chunk.len() as f64 / step_secs.max(1e-12)).into()),
                    ],
                );
            }
        }
        last_epoch_loss = epoch_loss / batches.max(1) as f64;
    }
    refresh_batch_norm(model, ds, &train_idx, cfg, &mut rng);
    if log_steps {
        let wall_secs = run_start.elapsed().as_secs_f64();
        basm_obs::jsonl::emit(
            TRAIN_LOG_STREAM,
            &[
                ("event", "summary".into()),
                ("model", model.name().into()),
                ("steps", step.into()),
                ("examples", examples.into()),
                ("wall_secs", wall_secs.into()),
                ("final_train_loss", last_epoch_loss.into()),
                ("examples_per_sec", (examples as f64 / wall_secs.max(1e-12)).into()),
            ],
        );
    }
    (step, last_epoch_loss)
}

/// Batch-norm recalibration: embeddings and attention shift the activation
/// distribution throughout training, so running statistics lag the final
/// weights and bias inference-mode outputs. A handful of forward-only
/// training-mode passes with frozen parameters refreshes them.
fn refresh_batch_norm(
    model: &mut dyn CtrModel,
    ds: &Dataset,
    train_idx: &[usize],
    cfg: &TrainConfig,
    rng: &mut Prng,
) {
    let passes = 30usize;
    for chunk in ds
        .shuffled_batches(train_idx, cfg.batch_size, rng)
        .into_iter()
        .take(passes)
    {
        let batch = ds.batch(&chunk);
        basm_tensor::with_graph(|g| {
            let _ = model.forward(g, &batch, true);
        });
        model.clear_journals();
    }
}

/// Evaluate a model over the given example indices, accumulating the
/// spatiotemporal grouping keys the paper's metrics need.
pub fn evaluate(
    model: &mut dyn CtrModel,
    ds: &Dataset,
    indices: &[usize],
    batch_size: usize,
) -> EvalAccumulator {
    let _span = basm_obs::span!("trainer.evaluate", examples = indices.len());
    let mut acc = EvalAccumulator::new();
    for chunk in indices.chunks(batch_size) {
        let batch = ds.batch(chunk);
        let probs = predict(model, &batch);
        acc.push_batch(
            &probs,
            batch.labels.data(),
            batch.tp_raw.iter().map(|&t| t as u32),
            batch.city_raw.iter().map(|&c| c as u32),
            batch.session.iter().copied(),
        );
    }
    acc
}

/// Full protocol: train on the train days, evaluate on the test day.
pub fn train_and_evaluate(
    model: &mut dyn CtrModel,
    ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainOutcome {
    let start = Instant::now();
    let (steps, final_train_loss) = train(model, ds, cfg);
    let train_time: Duration = start.elapsed();
    let acc = evaluate(model, ds, &ds.test_indices(), cfg.batch_size);
    TrainOutcome {
        model: model.name().to_string(),
        report: acc.report(),
        train_secs: train_time.as_secs_f64(),
        steps,
        final_train_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basm_baselines::build_model;
    use basm_data::{generate_dataset, WorldConfig};

    #[test]
    fn din_beats_random_on_tiny() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut model = build_model("DIN", &cfg, 1);
        let tc = TrainConfig::default_for(&data.dataset, 2, 128, 1);
        let out = train_and_evaluate(model.as_mut(), &data.dataset, &tc);
        assert!(
            out.report.auc > 0.55,
            "DIN should comfortably beat random: AUC {}",
            out.report.auc
        );
        assert!(out.final_train_loss.is_finite());
        assert!(out.steps > 0);
    }

    #[test]
    fn nonfinite_batch_skips_the_step_and_leaves_the_model_untouched() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut model = build_model("Wide&Deep", &cfg, 1);
        let probe = data.dataset.batch(&[4, 5, 6, 7]);
        let before = predict(model.as_mut(), &probe);

        let mut poisoned = data.dataset.batch(&[0, 1, 2, 3]);
        poisoned.labels.data_mut()[0] = f32::NAN;
        let mut opt = AdagradDecay::paper_default();
        let out =
            train_step_checked(model.as_mut(), &poisoned, &mut opt, 0.05, Some(10.0));
        assert!(!out.applied, "NaN label must not produce an applied step");
        assert!(!out.loss.is_finite());
        // Dense params and embeddings are exactly as they were.
        assert_eq!(predict(model.as_mut(), &probe), before);

        // A healthy batch right after still trains normally.
        let clean = data.dataset.batch(&[0, 1, 2, 3]);
        let out = train_step_checked(model.as_mut(), &clean, &mut opt, 0.05, Some(10.0));
        assert!(out.applied);
        assert!(out.loss.is_finite() && out.grad_norm.is_finite());
        assert_ne!(predict(model.as_mut(), &probe), before);
    }

    #[test]
    fn evaluate_covers_all_indices() {
        let cfg = WorldConfig::tiny();
        let data = generate_dataset(&cfg);
        let mut model = build_model("Wide&Deep", &cfg, 1);
        let test = data.dataset.test_indices();
        let acc = evaluate(model.as_mut(), &data.dataset, &test, 64);
        assert_eq!(acc.len(), test.len());
    }
}
