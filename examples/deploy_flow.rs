//! The paper's Fig. 13 deployment flow, end to end: offline training (AOP) →
//! model checkpoint → restore into a "serving" process (RTP) → offline
//! replay gate → live traffic through the TPP pipeline.
//!
//! ```sh
//! cargo run --example deploy_flow --release
//! ```

use basm::baselines::build_model;
use basm::core::{load_model, save_model};
use basm::data::{generate_dataset, WorldConfig};
use basm::serving::{replay_top1, Request, ServingPipeline};
use basm::tensor::Prng;
use basm::trainer::{train, TrainConfig};

fn main() {
    let mut cfg = WorldConfig::tiny();
    cfg.sessions_per_day = 400;
    cfg.train_days = 3;
    let data = generate_dataset(&cfg);
    let ds = &data.dataset;

    // 1. Offline training.
    println!("[1/5] training BASM offline ...");
    let mut trained = build_model("BASM", &cfg, 1);
    let tc = TrainConfig::default_for(ds, 2, 256, 1);
    train(trained.as_mut(), ds, &tc);

    // 2. Checkpoint (the AOP → RTP artifact).
    let bytes = save_model(trained.as_mut());
    println!("[2/5] checkpoint written: {} KiB", bytes.len() / 1024);

    // 3. Restore into a fresh process-side model.
    let mut serving_model = build_model("BASM", &cfg, 999); // different init seed
    load_model(serving_model.as_mut(), &bytes).expect("restore");
    println!("[3/5] restored into serving replica");

    // 4. Offline replay gate before taking traffic.
    let replay = replay_top1(serving_model.as_mut(), ds, &ds.test_indices());
    println!(
        "[4/5] replay gate: CTR@1 {:.4} (debiased {:.4}) over {} sessions, \
         top-1 agreement with legacy ranker {:.1}%",
        replay.ctr_at_1,
        replay.ctr_at_1_debiased,
        replay.sessions,
        replay.top1_agreement * 100.0
    );

    // 5. Serve live requests through TPP (recall → score → top-k).
    let mut pipeline = ServingPipeline::new(&data.world, serving_model, 15, 5);
    let mut rng = Prng::seeded(77);
    let mut shown = 0usize;
    for s in 0..50 {
        let uid = s % cfg.n_users;
        let req = Request { uid, day: 0, hour: 12, geo: data.world.users[uid].geo };
        shown += pipeline.serve(&data.world, req, &mut rng).expect("in-range request").len();
    }
    println!("[5/5] served 50 requests, {shown} exposures — deployment flow complete");
}
