//! Quickstart: generate a small spatiotemporal world, train BASM for a couple
//! of epochs, and print the paper's metrics (AUC / TAUC / CAUC / NDCG /
//! Logloss).
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use basm::core::basm::{Basm, BasmConfig};
use basm::data::{generate_dataset, DatasetStats, WorldConfig};
use basm::trainer::{train_and_evaluate, TrainConfig};

fn main() {
    // A laptop-friendly world: scale any of these fields up for real runs.
    let mut cfg = WorldConfig::tiny();
    cfg.sessions_per_day = 400;
    cfg.train_days = 3;

    println!("generating world '{}' ...", cfg.name);
    let data = generate_dataset(&cfg);
    let stats = DatasetStats::compute(&data.dataset);
    println!(
        "dataset: {} impressions, {} users, {} items, CTR {:.2}%, mean seq len {:.1}",
        stats.total_size,
        stats.n_users,
        stats.n_items,
        stats.ctr * 100.0,
        stats.mean_seq_len
    );

    let mut model = Basm::new(&cfg, BasmConfig::default());
    let tc = TrainConfig::default_for(&data.dataset, 2, 256, 1);
    println!("training BASM ({} epochs, batch {}) ...", tc.epochs, tc.batch_size);
    let out = train_and_evaluate(&mut model, &data.dataset, &tc);

    println!(
        "\n{:<8} AUC {:.4}  TAUC {:.4}  CAUC {:.4}  NDCG3 {:.4}  NDCG10 {:.4}  Logloss {:.4}",
        out.model,
        out.report.auc,
        out.report.tauc,
        out.report.cauc,
        out.report.ndcg3,
        out.report.ndcg10,
        out.report.logloss
    );
    println!(
        "trained {} steps in {:.1}s (final train loss {:.4})",
        out.steps, out.train_secs, out.final_train_loss
    );
}
