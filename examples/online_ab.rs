//! Miniature of the paper's online experiment (Table VII): train the Base
//! model and BASM offline, deploy both behind a simulated TPP/LBS/RTP stack,
//! bucket users 50/50, run a multi-day A/B against the ground-truth click
//! model, and report daily CTRs.
//!
//! ```sh
//! cargo run --example online_ab --release
//! ```

use basm::baselines::build_model;
use basm::data::{generate_dataset, WorldConfig};
use basm::serving::{run_ab_test, AbConfig, ServingPipeline};
use basm::trainer::{train, TrainConfig};

fn main() {
    let mut cfg = WorldConfig::tiny();
    cfg.sessions_per_day = 500;
    cfg.train_days = 3;
    let data = generate_dataset(&cfg);
    let ds = &data.dataset;

    println!("offline training both arms ...");
    let mut base = build_model("Base", &cfg, 1);
    let mut basm = build_model("BASM", &cfg, 1);
    let tc = TrainConfig::default_for(ds, 2, 256, 1);
    train(base.as_mut(), ds, &tc);
    train(basm.as_mut(), ds, &tc);

    let ab = AbConfig {
        days: 5,
        sessions_per_day: 400,
        recall_pool: 15,
        top_k: cfg.candidates_per_session,
        seed: 7,
    };
    let mut base_pipe = ServingPipeline::new(&data.world, base, ab.recall_pool, ab.top_k);
    let mut basm_pipe = ServingPipeline::new(&data.world, basm, ab.recall_pool, ab.top_k);
    println!("running {}-day A/B ({} sessions/day) ...\n", ab.days, ab.sessions_per_day);
    let result = run_ab_test(&data.world, &mut base_pipe, &mut basm_pipe, &ab);

    println!("{:<5} {:>10} {:>10} {:>12}", "Day", "Base CTR", "BASM CTR", "Improvement");
    for d in &result.days {
        println!(
            "{:<5} {:>9.2}% {:>9.2}% {:>11.2}%",
            d.day,
            d.base.ctr() * 100.0,
            d.treatment.ctr() * 100.0,
            d.relative_improvement() * 100.0
        );
    }
    let (b, t, imp) = result.overall();
    println!(
        "{:<5} {:>9.2}% {:>9.2}% {:>11.2}%\n",
        "Avg",
        b * 100.0,
        t * 100.0,
        imp * 100.0
    );

    println!("per time-period lift:");
    for (i, label) in result.by_time_period.labels.iter().enumerate() {
        let b = result.by_time_period.base[i];
        let t = result.by_time_period.treatment[i];
        let lift = if b.ctr() > 0.0 { (t.ctr() - b.ctr()) / b.ctr() * 100.0 } else { 0.0 };
        println!("  {label:>14}: {:>6} exposures, lift {lift:+.2}%", b.exposures + t.exposures);
    }
}
