//! Compare every Table IV method on a small dataset — a miniature of the
//! paper's offline evaluation.
//!
//! ```sh
//! cargo run --example compare_models --release [-- epochs]
//! ```

use basm::baselines::{build_model, TABLE4_MODELS};
use basm::data::{generate_dataset, WorldConfig};
use basm::trainer::{train_and_evaluate, TrainConfig};

fn main() {
    let epochs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let mut cfg = WorldConfig::tiny();
    cfg.sessions_per_day = 500;
    cfg.train_days = 3;
    let data = generate_dataset(&cfg);
    println!(
        "dataset: {} train / {} test impressions | {epochs} epochs\n",
        data.dataset.train_indices().len(),
        data.dataset.test_indices().len()
    );

    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "Method", "AUC", "TAUC", "CAUC", "NDCG3", "NDCG10", "Logloss", "sec"
    );
    for name in TABLE4_MODELS {
        let mut model = build_model(name, &cfg, 1);
        let tc = TrainConfig::default_for(&data.dataset, epochs, 256, 1);
        let out = train_and_evaluate(model.as_mut(), &data.dataset, &tc);
        println!(
            "{:<12} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>8.4} {:>7.1}",
            name,
            out.report.auc,
            out.report.tauc,
            out.report.cauc,
            out.report.ndcg3,
            out.report.ndcg10,
            out.report.logloss,
            out.train_secs
        );
    }
}
