//! Explore the synthetic spatiotemporal world: dataset statistics
//! (Table III), the hour/city exposure-CTR distributions (Fig. 2) and the
//! spatiotemporal-bias CTR surface (Fig. 6) — all without training anything.
//!
//! ```sh
//! cargo run --example explore_world --release
//! ```

use basm::analysis::{dual_bars, heatmap};
use basm::data::{
    ctr_surface, distribution_by_city, distribution_by_hour, distribution_by_time_period,
    generate_dataset, BucketStat, DatasetStats, WorldConfig,
};

fn main() {
    let cfg = WorldConfig::tiny();
    let data = generate_dataset(&cfg);
    let ds = &data.dataset;

    let s = DatasetStats::compute(ds);
    println!(
        "dataset '{}': {} impressions, {} users, {} items, {} clicks (CTR {:.2}%), ML {:.1}\n",
        s.name,
        s.total_size,
        s.n_users,
        s.n_items,
        s.n_clicks,
        s.ctr * 100.0,
        s.mean_seq_len
    );

    let by_hour = distribution_by_hour(ds);
    let labels: Vec<String> = by_hour.iter().map(|b| b.label.clone()).collect();
    let exp: Vec<f64> = by_hour.iter().map(|b| b.exposures as f64).collect();
    let ctr: Vec<f64> = by_hour.iter().map(BucketStat::ctr).collect();
    println!("{}", dual_bars("exposures & CTR by hour (Fig. 2a)", &labels, ("exposures", &exp), ("CTR", &ctr)));

    let by_city = distribution_by_city(ds);
    for b in &by_city {
        println!("{:>7}: {:>7} exposures, CTR {:.2}%", b.label, b.exposures, b.ctr() * 100.0);
    }
    println!();

    for b in distribution_by_time_period(ds) {
        println!("{:>14}: {:>7} exposures, CTR {:.2}%", b.label, b.exposures, b.ctr() * 100.0);
    }

    let surface = ctr_surface(ds);
    let rows: Vec<String> = (0..surface.len()).map(|c| format!("city{}", c + 1)).collect();
    let cols: Vec<String> = (0..24).map(|h| format!("{h:02}")).collect();
    println!("\n{}", heatmap("CTR surface over (city, hour) — Fig. 6", &rows, &cols, &surface));
}
