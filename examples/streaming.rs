//! Online-learning demo: stream the log day by day with progressive
//! validation (score each day before training on it), the way Ele.me's
//! production jobs consume the impression stream — and the reason the paper
//! trains with AdagradDecay.
//!
//! ```sh
//! cargo run --example streaming --release
//! ```

use basm::baselines::build_model;
use basm::data::{generate_dataset, WorldConfig};
use basm::tensor::optim::LrSchedule;
use basm::trainer::train_online;

fn main() {
    let mut cfg = WorldConfig::tiny();
    cfg.sessions_per_day = 400;
    cfg.train_days = 4;
    let data = generate_dataset(&cfg);
    let ds = &data.dataset;

    for name in ["DIN", "BASM"] {
        let mut model = build_model(name, &cfg, 1);
        let out = train_online(
            model.as_mut(),
            ds,
            256,
            LrSchedule::paper_warmup(60),
            1,
        );
        println!("{name} — progressive validation by day:");
        for d in &out.days {
            println!(
                "  day {}: AUC {:.4}  TAUC {:.4}  logloss {:.4}  (train loss {:.4})",
                d.day, d.report.auc, d.report.tauc, d.report.logloss, d.train_loss
            );
        }
        if let Some(steady) = out.steady_state(1) {
            println!("  steady state (skipping day 0): AUC {:.4}\n", steady.auc);
        }
    }
}
